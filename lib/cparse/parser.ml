(* Recursive-descent parser for the C subset.

   Typedef names are tracked in parser state so that `T x;` is recognised
   as a declaration once `typedef ... T;` has been seen.  Enum constants
   are parsed but their resolution to integer values is the type checker's
   job. *)

open Ast

exception Error of string * Loc.t

type state = {
  toks : Lexer.lexeme array;
  mutable idx : int;
  typedefs : (string, unit) Hashtbl.t;
  enum_tags : (string, unit) Hashtbl.t;
}

let cur st = st.toks.(st.idx).Lexer.tok
let cur_loc st = st.toks.(st.idx).Lexer.loc

let peek_ahead st n =
  let i = st.idx + n in
  if i < Array.length st.toks then st.toks.(i).Lexer.tok else Token.Eof

let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let error st msg = raise (Error (msg, cur_loc st))

let expect st tok =
  if cur st = tok then advance st
  else
    error st
      (Fmt.str "expected %s but found %s" (Token.to_string tok)
         (Token.to_string (cur st)))

let accept st tok = if cur st = tok then (advance st; true) else false

let expect_ident st =
  match cur st with
  | Token.Ident s -> advance st; s
  | t -> error st (Fmt.str "expected identifier, found %s" (Token.to_string t))

(* ------------------------------------------------------------------ *)
(* Declaration specifiers                                              *)
(* ------------------------------------------------------------------ *)

let is_typedef_name st s = Hashtbl.mem st.typedefs s

(* Does the current token start a declaration? *)
let starts_decl st =
  match cur st with
  | Token.Kw
      ( Kvoid | Kchar | Kshort | Kint | Klong | Kfloat | Kdouble | Ksigned
      | Kunsigned | Kbool | Kconst | Kvolatile | Kstatic | Kextern | Kinline
      | Kregister | Kstruct | Kunion | Kenum | Ktypedef ) ->
    true
  | Token.Ident s -> is_typedef_name st s
  | _ -> false

type specs = {
  sp_ty : ty;
  sp_quals : quals;
  sp_storage : storage;
  sp_typedef : bool;
  sp_inline : bool;
  sp_newtags : global list; (* inline struct/union/enum definitions *)
}

(* Parse declaration specifiers: type keywords in any order, plus
   qualifiers and storage classes. *)
let rec parse_specs st : specs =
  let base = ref None in
  let signedness = ref None in
  let longs = ref 0 in
  let short = ref false in
  let quals = ref no_quals in
  let storage = ref S_none in
  let is_typedef = ref false in
  let inline = ref false in
  let newtags = ref [] in
  let parse_tag_body_fields () =
    (* struct/union member list *)
    let fields = ref [] in
    expect st Token.Lbrace;
    while cur st <> Token.Rbrace do
      let fspecs = parse_specs_aux st in
      let rec members () =
        let fld_ty, fld_name = parse_declarator st fspecs.sp_ty in
        fields := { fld_name; fld_ty } :: !fields;
        if accept st Token.Comma then members ()
      in
      members ();
      expect st Token.Semi
    done;
    expect st Token.Rbrace;
    List.rev !fields
  in
  let fresh_tag =
    let n = ref 0 in
    fun () -> incr n; Fmt.str "__anon_tag_%d_%d" st.idx !n
  in
  let rec go () =
    match cur st with
    | Token.Kw Kvoid -> advance st; base := Some Tvoid; go ()
    | Token.Kw Kchar -> advance st; base := Some (Tint (Ichar, true)); go ()
    | Token.Kw Kshort -> advance st; short := true; go ()
    | Token.Kw Kint -> advance st;
      if !base = None then base := Some (Tint (Iint, true));
      go ()
    | Token.Kw Klong -> advance st; incr longs; go ()
    | Token.Kw Kfloat -> advance st; base := Some Tfloat; go ()
    | Token.Kw Kdouble -> advance st; base := Some Tdouble; go ()
    | Token.Kw Kbool -> advance st; base := Some Tbool; go ()
    | Token.Kw Ksigned -> advance st; signedness := Some true; go ()
    | Token.Kw Kunsigned -> advance st; signedness := Some false; go ()
    | Token.Kw Kconst -> advance st; quals := { !quals with q_const = true }; go ()
    | Token.Kw Kvolatile ->
      advance st; quals := { !quals with q_volatile = true }; go ()
    | Token.Kw Kstatic -> advance st; storage := S_static; go ()
    | Token.Kw Kextern -> advance st; storage := S_extern; go ()
    | Token.Kw Kregister -> advance st; storage := S_register; go ()
    | Token.Kw Kinline -> advance st; inline := true; go ()
    | Token.Kw Ktypedef -> advance st; is_typedef := true; go ()
    | Token.Kw Kstruct | Token.Kw Kunion ->
      let is_struct = cur st = Token.Kw Kstruct in
      advance st;
      let tag =
        match cur st with
        | Token.Ident s -> advance st; s
        | _ -> fresh_tag ()
      in
      if cur st = Token.Lbrace then begin
        let fields = parse_tag_body_fields () in
        newtags :=
          (if is_struct then Gstruct (tag, fields) else Gunion (tag, fields))
          :: !newtags
      end;
      base := Some (if is_struct then Tstruct tag else Tunion tag);
      go ()
    | Token.Kw Kenum ->
      advance st;
      let tag =
        match cur st with
        | Token.Ident s -> advance st; s
        | _ -> fresh_tag ()
      in
      if cur st = Token.Lbrace then begin
        advance st;
        let items = ref [] in
        let rec enum_items () =
          match cur st with
          | Token.Rbrace -> ()
          | _ ->
            let name = expect_ident st in
            let value =
              if accept st Token.Eq then
                match cur st with
                | Token.Int_lit (v, _, _) -> advance st; Some v
                | Token.Minus ->
                  advance st;
                  (match cur st with
                  | Token.Int_lit (v, _, _) -> advance st; Some (Int64.neg v)
                  | _ -> error st "expected integer in enum")
                | _ -> error st "expected integer in enum"
              else None
            in
            items := (name, value) :: !items;
            if accept st Token.Comma then enum_items ()
        in
        enum_items ();
        expect st Token.Rbrace;
        newtags := Genum (tag, List.rev !items) :: !newtags;
        Hashtbl.replace st.enum_tags tag ()
      end;
      (* enums are just ints in this subset *)
      base := Some (Tint (Iint, true));
      go ()
    | Token.Ident s when is_typedef_name st s && !base = None && !longs = 0
                         && not !short && !signedness = None ->
      advance st;
      base := Some (Tnamed s);
      go ()
    | _ -> ()
  in
  go ();
  let ty =
    let signed = match !signedness with Some s -> s | None -> true in
    match !base, !longs, !short with
    | Some Tvoid, _, _ -> Tvoid
    | Some Tfloat, _, _ -> Tfloat
    | Some Tdouble, 0, _ -> Tdouble
    | Some Tdouble, _, _ -> Tdouble (* long double ~ double *)
    | Some Tbool, _, _ -> Tbool
    | Some (Tint (Ichar, _)), _, _ -> Tint (Ichar, signed)
    | (Some (Tint (Iint, _)) | None), 0, true -> Tint (Ishort, signed)
    | (Some (Tint (Iint, _)) | None), 0, false ->
      if !signedness = None && !base = None then
        (* bare qualifiers without type default to int (K&R style) *)
        Tint (Iint, true)
      else Tint (Iint, signed)
    | (Some (Tint (Iint, _)) | None), 1, _ -> Tint (Ilong, signed)
    | (Some (Tint (Iint, _)) | None), _, _ -> Tint (Ilonglong, signed)
    | Some t, _, _ -> t
  in
  {
    sp_ty = ty;
    sp_quals = !quals;
    sp_storage = !storage;
    sp_typedef = !is_typedef;
    sp_inline = !inline;
    sp_newtags = List.rev !newtags;
  }

and parse_specs_aux st = parse_specs st

(* ------------------------------------------------------------------ *)
(* Declarators                                                         *)
(* ------------------------------------------------------------------ *)

(* Parse a declarator given the base type; returns (type, name).
   Supported: pointers, arrays, and (for top-level) function declarators
   handled by the caller.  Abstract declarators (no name) are allowed for
   casts and parameters. *)
and parse_declarator st base : ty * string =
  let rec pointers ty =
    if accept st Token.Star then begin
      (* qualifiers after * are parsed and dropped (e.g. int *const p) *)
      while
        (match cur st with
        | Token.Kw Kconst | Token.Kw Kvolatile -> advance st; true
        | _ -> false)
      do
        ()
      done;
      pointers (Tptr ty)
    end
    else ty
  in
  let ty = pointers base in
  let name = match cur st with Token.Ident s -> advance st; s | _ -> "" in
  (* array suffixes; inner-most dimension is parsed first syntactically *)
  let rec arrays () =
    if accept st Token.Lbracket then begin
      let n =
        match cur st with
        | Token.Int_lit (v, _, _) -> advance st; Some (Int64.to_int v)
        | Token.Rbracket -> None
        | _ ->
          (* non-constant dimensions degrade to unsized arrays *)
          let depth = ref 0 in
          while
            (match cur st with
            | Token.Rbracket when !depth = 0 -> false
            | Token.Eof -> false
            | Token.Lbracket -> incr depth; advance st; true
            | Token.Rbracket -> decr depth; advance st; true
            | _ -> advance st; true)
          do
            ()
          done;
          None
      in
      expect st Token.Rbracket;
      let rest = arrays () in
      fun t -> Tarray (rest t, n)
    end
    else fun t -> t
  in
  let arr = arrays () in
  (arr ty, name)

(* ------------------------------------------------------------------ *)
(* Type names (for casts and sizeof)                                   *)
(* ------------------------------------------------------------------ *)

and parse_type_name st : ty =
  let specs = parse_specs st in
  let ty, _name = parse_declarator st specs.sp_ty in
  ty

(* Is the parenthesised thing at the current `(` a type name?  Assumes the
   current token is Lparen. *)
and paren_is_type st =
  match peek_ahead st 1 with
  | Token.Kw
      ( Kvoid | Kchar | Kshort | Kint | Klong | Kfloat | Kdouble | Ksigned
      | Kunsigned | Kbool | Kconst | Kvolatile | Kstruct | Kunion | Kenum ) ->
    true
  | Token.Ident s -> is_typedef_name st s
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing)                                   *)
(* ------------------------------------------------------------------ *)

and parse_primary st : expr =
  match cur st with
  | Token.Int_lit (v, k, u) -> advance st; mk_expr (Int_lit (v, k, u))
  | Token.Float_lit (v, d) -> advance st; mk_expr (Float_lit (v, d))
  | Token.Char_lit c -> advance st; mk_expr (Char_lit c)
  | Token.Str_lit s ->
    advance st;
    (* adjacent string literals concatenate *)
    let buf = Buffer.create (String.length s) in
    Buffer.add_string buf s;
    let rec more () =
      match cur st with
      | Token.Str_lit s2 -> advance st; Buffer.add_string buf s2; more ()
      | _ -> ()
    in
    more ();
    mk_expr (Str_lit (Buffer.contents buf))
  | Token.Ident s -> advance st; mk_expr (Ident s)
  | Token.Lparen ->
    advance st;
    let e = parse_expr st in
    expect st Token.Rparen;
    e
  | Token.Lbrace ->
    (* initializer list in expression position: compound literal body *)
    advance st;
    let items = ref [] in
    let rec go () =
      if cur st <> Token.Rbrace then begin
        items := parse_assignment st :: !items;
        if accept st Token.Comma then go ()
      end
    in
    go ();
    expect st Token.Rbrace;
    mk_expr (Init_list (List.rev !items))
  | t -> error st (Fmt.str "unexpected token %s in expression" (Token.to_string t))

and parse_postfix st : expr =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match cur st with
    | Token.Lparen ->
      advance st;
      let args = ref [] in
      if cur st <> Token.Rparen then begin
        let rec go () =
          args := parse_assignment st :: !args;
          if accept st Token.Comma then go ()
        in
        go ()
      end;
      expect st Token.Rparen;
      e := mk_expr (Call (!e, List.rev !args))
    | Token.Lbracket ->
      advance st;
      let i = parse_expr st in
      expect st Token.Rbracket;
      e := mk_expr (Index (!e, i))
    | Token.Dot ->
      advance st;
      let n = expect_ident st in
      e := mk_expr (Member (!e, n))
    | Token.Arrow ->
      advance st;
      let n = expect_ident st in
      e := mk_expr (Arrow (!e, n))
    | Token.PlusPlus -> advance st; e := mk_expr (Incdec (true, false, !e))
    | Token.MinusMinus -> advance st; e := mk_expr (Incdec (false, false, !e))
    | _ -> continue_ := false
  done;
  !e

and parse_unary st : expr =
  match cur st with
  | Token.PlusPlus ->
    advance st;
    mk_expr (Incdec (true, true, parse_unary st))
  | Token.MinusMinus ->
    advance st;
    mk_expr (Incdec (false, true, parse_unary st))
  | Token.Plus -> advance st; mk_expr (Unop (Uplus, parse_cast st))
  | Token.Minus -> (
    advance st;
    (* canonicalise negated literals so printing round-trips *)
    match parse_cast st with
    | { ek = Int_lit (v, k, u); _ } -> mk_expr (Int_lit (Int64.neg v, k, u))
    | { ek = Float_lit (v, d); _ } -> mk_expr (Float_lit (-.v, d))
    | e -> mk_expr (Unop (Neg, e)))
  | Token.Bang -> advance st; mk_expr (Unop (Lognot, parse_cast st))
  | Token.Tilde -> advance st; mk_expr (Unop (Bitnot, parse_cast st))
  | Token.Star -> advance st; mk_expr (Deref (parse_cast st))
  | Token.Amp -> advance st; mk_expr (Addrof (parse_cast st))
  | Token.Kw Ksizeof ->
    advance st;
    if cur st = Token.Lparen && paren_is_type st then begin
      advance st;
      let ty = parse_type_name st in
      expect st Token.Rparen;
      mk_expr (Sizeof_ty ty)
    end
    else mk_expr (Sizeof_expr (parse_unary st))
  | _ -> parse_postfix st

and parse_cast st : expr =
  if cur st = Token.Lparen && paren_is_type st then begin
    advance st;
    let ty = parse_type_name st in
    expect st Token.Rparen;
    (* compound literal: (T){...} is treated as a cast of an init list *)
    mk_expr (Cast (ty, parse_cast st))
  end
  else parse_unary st

and binop_of_token = function
  | Token.Star -> Some (Mul, 10)
  | Token.Slash -> Some (Div, 10)
  | Token.Percent -> Some (Mod, 10)
  | Token.Plus -> Some (Add, 9)
  | Token.Minus -> Some (Sub, 9)
  | Token.Shl -> Some (Shl, 8)
  | Token.Shr -> Some (Shr, 8)
  | Token.Lt -> Some (Lt, 7)
  | Token.Gt -> Some (Gt, 7)
  | Token.Le -> Some (Le, 7)
  | Token.Ge -> Some (Ge, 7)
  | Token.EqEq -> Some (Eq, 6)
  | Token.BangEq -> Some (Ne, 6)
  | Token.Amp -> Some (Band, 5)
  | Token.Caret -> Some (Bxor, 4)
  | Token.Pipe -> Some (Bor, 3)
  | Token.AmpAmp -> Some (Land, 2)
  | Token.PipePipe -> Some (Lor, 1)
  | _ -> None

and parse_binary st min_prec : expr =
  let lhs = ref (parse_cast st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (cur st) with
    | Some (op, prec) when prec >= min_prec ->
      advance st;
      let rhs = parse_binary st (prec + 1) in
      lhs := mk_expr (Binop (op, !lhs, rhs))
    | _ -> continue_ := false
  done;
  !lhs

and parse_conditional st : expr =
  let c = parse_binary st 1 in
  if accept st Token.Question then begin
    let t = parse_expr st in
    expect st Token.Colon;
    let f = parse_conditional st in
    mk_expr (Cond (c, t, f))
  end
  else c

and assign_op_of_token = function
  | Token.Eq -> Some A_none
  | Token.PlusEq -> Some A_add
  | Token.MinusEq -> Some A_sub
  | Token.StarEq -> Some A_mul
  | Token.SlashEq -> Some A_div
  | Token.PercentEq -> Some A_mod
  | Token.ShlEq -> Some A_shl
  | Token.ShrEq -> Some A_shr
  | Token.AmpEq -> Some A_band
  | Token.CaretEq -> Some A_bxor
  | Token.PipeEq -> Some A_bor
  | _ -> None

and parse_assignment st : expr =
  let lhs = parse_conditional st in
  match assign_op_of_token (cur st) with
  | Some op ->
    advance st;
    let rhs = parse_assignment st in
    mk_expr (Assign (op, lhs, rhs))
  | None -> lhs

and parse_expr st : expr =
  let e = parse_assignment st in
  if accept st Token.Comma then begin
    let rest = parse_expr st in
    mk_expr (Comma (e, rest))
  end
  else e

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and parse_initializer st : expr =
  if cur st = Token.Lbrace then begin
    advance st;
    let items = ref [] in
    let rec go () =
      if cur st <> Token.Rbrace then begin
        items := parse_initializer st :: !items;
        if accept st Token.Comma then go ()
      end
    in
    go ();
    expect st Token.Rbrace;
    mk_expr (Init_list (List.rev !items))
  end
  else parse_assignment st

and parse_local_decls st : var_decl list =
  let specs = parse_specs st in
  if specs.sp_newtags <> [] then
    (* local struct definitions are not supported; keep the base type *)
    ();
  let decls = ref [] in
  let rec go () =
    let ty, name = parse_declarator st specs.sp_ty in
    let init = if accept st Token.Eq then Some (parse_initializer st) else None in
    decls :=
      {
        v_name = name;
        v_ty = ty;
        v_quals = specs.sp_quals;
        v_storage = specs.sp_storage;
        v_init = init;
      }
      :: !decls;
    if accept st Token.Comma then go ()
  in
  go ();
  expect st Token.Semi;
  if specs.sp_typedef then begin
    List.iter (fun v -> Hashtbl.replace st.typedefs v.v_name ()) !decls;
    []
  end
  else List.rev !decls

and parse_stmt st : stmt =
  match cur st with
  | Token.Semi -> advance st; mk_stmt Snull
  | Token.Lbrace ->
    advance st;
    let ss = ref [] in
    while cur st <> Token.Rbrace do
      ss := parse_stmt st :: !ss
    done;
    expect st Token.Rbrace;
    mk_stmt (Sblock (List.rev !ss))
  | Token.Kw Kif ->
    advance st;
    expect st Token.Lparen;
    let c = parse_expr st in
    expect st Token.Rparen;
    let t = parse_stmt st in
    let f = if accept st (Token.Kw Kelse) then Some (parse_stmt st) else None in
    mk_stmt (Sif (c, t, f))
  | Token.Kw Kwhile ->
    advance st;
    expect st Token.Lparen;
    let c = parse_expr st in
    expect st Token.Rparen;
    mk_stmt (Swhile (c, parse_stmt st))
  | Token.Kw Kdo ->
    advance st;
    let b = parse_stmt st in
    expect st (Token.Kw Kwhile);
    expect st Token.Lparen;
    let c = parse_expr st in
    expect st Token.Rparen;
    expect st Token.Semi;
    mk_stmt (Sdo (b, c))
  | Token.Kw Kfor ->
    advance st;
    expect st Token.Lparen;
    let init =
      if cur st = Token.Semi then (advance st; None)
      else if starts_decl st then Some (Fi_decl (parse_local_decls st))
      else begin
        let e = parse_expr st in
        expect st Token.Semi;
        Some (Fi_expr e)
      end
    in
    let cond =
      if cur st = Token.Semi then None else Some (parse_expr st)
    in
    expect st Token.Semi;
    let step = if cur st = Token.Rparen then None else Some (parse_expr st) in
    expect st Token.Rparen;
    mk_stmt (Sfor (init, cond, step, parse_stmt st))
  | Token.Kw Kreturn ->
    advance st;
    let e = if cur st = Token.Semi then None else Some (parse_expr st) in
    expect st Token.Semi;
    mk_stmt (Sreturn e)
  | Token.Kw Kbreak -> advance st; expect st Token.Semi; mk_stmt Sbreak
  | Token.Kw Kcontinue -> advance st; expect st Token.Semi; mk_stmt Scontinue
  | Token.Kw Kgoto ->
    advance st;
    let l = expect_ident st in
    expect st Token.Semi;
    mk_stmt (Sgoto l)
  | Token.Kw Kswitch ->
    advance st;
    expect st Token.Lparen;
    let e = parse_expr st in
    expect st Token.Rparen;
    expect st Token.Lbrace;
    let cases = ref [] in
    while cur st <> Token.Rbrace do
      (* one or more labels *)
      let labels = ref [] in
      let rec parse_labels () =
        match cur st with
        | Token.Kw Kcase ->
          advance st;
          let e = parse_conditional st in
          expect st Token.Colon;
          labels := L_case e :: !labels;
          parse_labels ()
        | Token.Kw Kdefault ->
          advance st;
          expect st Token.Colon;
          labels := L_default :: !labels;
          parse_labels ()
        | _ -> ()
      in
      parse_labels ();
      if !labels = [] then error st "expected case or default label in switch";
      let body = ref [] in
      let rec parse_body () =
        match cur st with
        | Token.Kw Kcase | Token.Kw Kdefault | Token.Rbrace -> ()
        | _ ->
          body := parse_stmt st :: !body;
          parse_body ()
      in
      parse_body ();
      cases :=
        { case_labels = List.rev !labels; case_body = List.rev !body }
        :: !cases
    done;
    expect st Token.Rbrace;
    mk_stmt (Sswitch (e, List.rev !cases))
  | Token.Ident name when peek_ahead st 1 = Token.Colon && not (is_typedef_name st name) ->
    advance st;
    advance st;
    (* label *)
    let inner =
      match cur st with
      | Token.Rbrace | Token.Kw Kcase | Token.Kw Kdefault -> mk_stmt Snull
      | _ -> parse_stmt st
    in
    mk_stmt (Slabel (name, inner))
  | _ when starts_decl st ->
    let ds = parse_local_decls st in
    mk_stmt (Sdecl ds)
  | _ ->
    let e = parse_expr st in
    expect st Token.Semi;
    mk_stmt (Sexpr e)

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

and parse_params st : param list * bool =
  (* after the opening paren *)
  if accept st Token.Rparen then ([], false)
  else if cur st = Token.Kw Kvoid && peek_ahead st 1 = Token.Rparen then begin
    advance st;
    advance st;
    ([], false)
  end
  else begin
    let params = ref [] in
    let variadic = ref false in
    let rec go () =
      if accept st Token.Ellipsis then variadic := true
      else begin
        let specs = parse_specs st in
        let ty, name = parse_declarator st specs.sp_ty in
        (* array parameters decay to pointers *)
        let ty = match ty with Tarray (t, _) -> Tptr t | t -> t in
        params := { p_name = name; p_ty = ty } :: !params;
        if accept st Token.Comma then go ()
      end
    in
    go ();
    expect st Token.Rparen;
    (List.rev !params, !variadic)
  end

let parse_global st : global list =
  let specs = parse_specs st in
  if accept st Token.Semi then
    (* bare struct/union/enum definition *)
    specs.sp_newtags
  else begin
    let ty, name = parse_declarator st specs.sp_ty in
    if cur st = Token.Lparen then begin
      (* function definition or prototype *)
      advance st;
      let params, variadic = parse_params st in
      if accept st Token.Semi then
        specs.sp_newtags
        @ [
            Gproto
              {
                pr_name = name;
                pr_ret = ty;
                pr_params = List.map (fun p -> p.p_ty) params;
                pr_variadic = variadic;
              };
          ]
      else begin
        expect st Token.Lbrace;
        let body = ref [] in
        while cur st <> Token.Rbrace do
          body := parse_stmt st :: !body
        done;
        expect st Token.Rbrace;
        specs.sp_newtags
        @ [
            Gfun
              {
                f_id = no_id;
                f_name = name;
                f_ret = ty;
                f_params = params;
                f_variadic = variadic;
                f_body = List.rev !body;
                f_static = specs.sp_storage = S_static;
                f_inline = specs.sp_inline;
              };
          ]
      end
    end
    else begin
      (* global variable(s) or typedef *)
      let decls = ref [] in
      let rec go ty name =
        let init =
          if accept st Token.Eq then Some (parse_initializer st) else None
        in
        decls :=
          {
            v_name = name;
            v_ty = ty;
            v_quals = specs.sp_quals;
            v_storage = specs.sp_storage;
            v_init = init;
          }
          :: !decls;
        if accept st Token.Comma then begin
          let ty, name = parse_declarator st specs.sp_ty in
          go ty name
        end
      in
      go ty name;
      expect st Token.Semi;
      if specs.sp_typedef then begin
        List.iter (fun v -> Hashtbl.replace st.typedefs v.v_name ()) !decls;
        specs.sp_newtags
        @ List.rev_map (fun v -> Gtypedef (v.v_name, v.v_ty)) !decls
      end
      else specs.sp_newtags @ List.rev_map (fun v -> Gvar v) !decls
    end
  end

(* Parse from an already-lexed buffer: the compile pipeline tokenizes
   once and feeds the same array to the parser and to lexical coverage. *)
let parse_tokens (toks : Lexer.lexeme array) : tu =
  let st =
    { toks; idx = 0; typedefs = Hashtbl.create 16; enum_tags = Hashtbl.create 8 }
  in
  let globals = ref [] in
  while cur st <> Token.Eof do
    globals := List.rev_append (parse_global st) !globals
  done;
  Ast_ids.renumber { globals = List.rev !globals }

let parse_tu (src : string) : tu = parse_tokens (Lexer.tokenize src)

(* Parse, mapping both lexer and parser errors into a result. *)
let parse (src : string) : (tu, string) result =
  match parse_tu src with
  | tu -> Ok tu
  | exception Error (msg, loc) ->
    Result.Error (Fmt.str "parse error at %a: %s" Loc.pp loc msg)
  | exception Lexer.Error (msg, loc) ->
    Result.Error (Fmt.str "lex error at %a: %s" Loc.pp loc msg)
  | exception Stack_overflow -> Result.Error "parser stack overflow"
