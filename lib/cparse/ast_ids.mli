(** Unique node-id management.

    Mutators select AST nodes by id during traversal and later rewrite
    exactly that node, so ids must be unique within a translation unit.
    Fresh nodes are built with [Ast.no_id]; [renumber] restores the
    invariant after parsing, generation, or mutation. *)

val canonicalize : Ast.tu -> Ast.tu
(** Only the literal canonicalisation of {!renumber} — negation of a
    literal is folded into the literal (matching the parser), without
    touching ids.  Identity-preserving: untouched subtrees are shared
    with the input.  {!Pretty} output of the result is byte-identical to
    that of [renumber]'s. *)

val renumber : Ast.tu -> Ast.tu
(** Reassign every expression, statement, and function a fresh sequential
    id.  Also canonicalises negation-of-literal expressions (matching the
    parser), so round trips through {!Pretty} are stable. *)

val max_id : Ast.tu -> int
(** Largest id in use (an upper bound for fresh-name generation). *)

val well_formed : Ast.tu -> bool
(** True when every node id is assigned and unique. *)
