(* Deterministic splitmix64 RNG.

   Every stochastic component in the reproduction (generators, fuzzers,
   the LLM oracle) draws from an explicit [t] so that experiments are
   reproducible from a single integer seed. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in";
  lo + int t (hi - lo + 1)

let bool t = int t 2 = 0

(* True with probability [p]. *)
let flip t p = Float.of_int (int t 1_000_000) /. 1_000_000. < p

let float t = Float.of_int (int t 1_000_000) /. 1_000_000.

let choose t xs =
  match xs with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let choose_opt t xs = match xs with [] -> None | _ -> Some (choose t xs)

let choose_arr t xs =
  if Array.length xs = 0 then invalid_arg "Rng.choose_arr: empty array";
  xs.(int t (Array.length xs))

(* Weighted choice from (weight, value) pairs. *)
let weighted t pairs =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 pairs in
  if total <= 0 then invalid_arg "Rng.weighted: non-positive total weight";
  let k = int t total in
  let rec pick k = function
    | [] -> invalid_arg "Rng.weighted: unreachable"
    | (w, v) :: rest -> if k < w then v else pick (k - w) rest
  in
  pick k pairs

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

(* Split off an independent stream (for per-task determinism). *)
let split t =
  let s = next_int64 t in
  { state = s }

(* Raw state accessors, for checkpoint/resume: restoring a saved state
   replays the exact draw sequence the snapshot interrupted. *)
let state t = t.state
let set_state t s = t.state <- s
