(* Type checker for the C subset.

   Produces a list of diagnostics (errors and warnings) plus a map from
   expression ids to computed types.  A translation unit "compiles" iff it
   has no errors; warnings mirror GCC's permissiveness (e.g. implicit
   int/pointer conversions warn but compile). *)

open Ast

type severity = Error | Warning

type diag = { sev : severity; msg : string; in_func : string option }

type env = {
  structs : (string, field list) Hashtbl.t;
  unions : (string, field list) Hashtbl.t;
  typedefs : (string, ty) Hashtbl.t;
  enum_consts : (string, int64) Hashtbl.t;
  funcs : (string, ty * ty list * bool) Hashtbl.t; (* ret, params, variadic *)
  globals : (string, ty * quals) Hashtbl.t;
  (* Block scoping as one table plus an undo trail, not a Hashtbl per
     scope: [vars] stacks shadowed bindings with [Hashtbl.add] (find
     returns the innermost), each binding is tagged with the depth it
     was declared at (same-depth redeclaration is the redefinition
     error), and leaving a scope removes exactly the names its trail
     recorded.  Deeply nested blocks — which mutants grow without bound
     — cost one string hash per lookup instead of one per enclosing
     scope. *)
  vars : (string, int * ty * quals) Hashtbl.t;
  mutable depth : int; (* 0 = file scope: declare_local is a no-op *)
  mutable trail : string list ref list; (* names declared per open scope *)
  types : (int, ty) Hashtbl.t; (* eid -> type *)
  mutable diags : diag list;
  mutable cur_func : fundef option;
  mutable loop_depth : int;
  mutable switch_depth : int;
  mutable labels : (string, unit) Hashtbl.t;
  mutable gotos : string list;
}

type result = {
  r_diags : diag list;
  r_types : (int, ty) Hashtbl.t;
  r_ok : bool;
}

(* Functions from libc treated as implicitly declared builtins. *)
let builtins : (string * (ty * ty list * bool)) list =
  let i = Tint (Iint, true) in
  let l = Tint (Ilong, true) in
  let charp = Tptr (Tint (Ichar, true)) in
  let voidp = Tptr Tvoid in
  [
    ("printf", (i, [ charp ], true));
    ("sprintf", (i, [ charp; charp ], true));
    ("snprintf", (i, [ charp; l; charp ], true));
    ("puts", (i, [ charp ], false));
    ("putchar", (i, [ i ], false));
    ("abort", (Tvoid, [], false));
    ("exit", (Tvoid, [ i ], false));
    ("strlen", (l, [ charp ], false));
    ("strcpy", (charp, [ charp; charp ], false));
    ("strcmp", (i, [ charp; charp ], false));
    ("memset", (voidp, [ voidp; i; l ], false));
    ("memcpy", (voidp, [ voidp; voidp; l ], false));
    ("malloc", (voidp, [ l ], false));
    ("free", (Tvoid, [ voidp ], false));
    ("rand", (i, [], false));
    ("abs", (i, [ i ], false));
  ]

let error env msg =
  env.diags <-
    { sev = Error; msg; in_func = Option.map (fun f -> f.f_name) env.cur_func }
    :: env.diags

let warn env msg =
  env.diags <-
    { sev = Warning; msg; in_func = Option.map (fun f -> f.f_name) env.cur_func }
    :: env.diags

(* Resolve typedef names to their underlying type. *)
let rec resolve env ty =
  match ty with
  | Tnamed n -> (
    match Hashtbl.find_opt env.typedefs n with
    | Some t -> resolve env t
    | None ->
      error env (Fmt.str "unknown type name '%s'" n);
      Tint (Iint, true))
  | t -> t

let fields_of env ty =
  match resolve env ty with
  | Tstruct tag -> Hashtbl.find_opt env.structs tag
  | Tunion tag -> Hashtbl.find_opt env.unions tag
  | _ -> None

(* Usual arithmetic conversions. *)
let arith_conv a b =
  match a, b with
  | Tdouble, _ | _, Tdouble -> Tdouble
  | Tfloat, _ | _, Tfloat -> Tfloat
  | Tint (k1, s1), Tint (k2, s2) ->
    let r1 = ikind_rank k1 and r2 = ikind_rank k2 in
    if r1 < 4 && r2 < 4 then Tint (Iint, true) (* integer promotion *)
    else if r1 > r2 then Tint (k1, s1)
    else if r2 > r1 then Tint (k2, s2)
    else Tint (k1, s1 && s2)
  | Tbool, t | t, Tbool -> t
  | t, _ -> t

(* Decay arrays to pointers at use sites. *)
let decay ty = match ty with Tarray (t, _) -> Tptr t | t -> t

let lookup_var env name =
  match Hashtbl.find_opt env.vars name with
  | Some (_, ty, quals) -> Some (ty, quals)
  | None -> Hashtbl.find_opt env.globals name

let push_scope env =
  env.depth <- env.depth + 1;
  env.trail <- ref [] :: env.trail

let pop_scope env =
  match env.trail with
  | declared :: rest ->
    List.iter (Hashtbl.remove env.vars) !declared;
    env.trail <- rest;
    env.depth <- env.depth - 1
  | [] -> ()

let declare_local env name ty quals =
  match env.trail with
  | declared :: _ ->
    (match Hashtbl.find_opt env.vars name with
    | Some (d, _, _) when d = env.depth ->
      error env (Fmt.str "redefinition of '%s'" name)
    | _ -> ());
    (* [add], not [replace]: the outer binding must come back on pop *)
    Hashtbl.add env.vars name (env.depth, ty, quals);
    declared := name :: !declared
  | [] -> ()

(* Is an expression a modifiable lvalue?  Returns an error reason if not. *)
let rec lvalue_status env (e : expr) : (unit, string) Stdlib.result =
  match e.ek with
  | Ident n -> (
    match lookup_var env n with
    | Some (ty, quals) ->
      if quals.q_const then Stdlib.Error (Fmt.str "assignment of read-only variable '%s'" n)
      else begin
        match resolve env ty with
        | Tarray _ -> Stdlib.Error (Fmt.str "assignment to array '%s'" n)
        | Tfunc _ -> Stdlib.Error (Fmt.str "assignment to function '%s'" n)
        | _ -> Ok ()
      end
    | None ->
      (* enum constants are rvalues *)
      if Hashtbl.mem env.enum_consts n then
        Stdlib.Error (Fmt.str "assignment to enum constant '%s'" n)
      else Ok () (* undeclared: reported elsewhere *))
  | Index _ | Deref _ | Member _ | Arrow _ -> Ok ()
  | Cast (_, inner) ->
    (* cast-as-lvalue is a GNU extension we reject, but see through
       compound-literal-like casts *)
    (match inner.ek with
    | Init_list _ -> Ok () (* compound literal is an lvalue *)
    | _ -> Stdlib.Error "assignment to cast expression")
  | Comma (_, b) -> lvalue_status env b
  | _ -> Stdlib.Error "lvalue required as left operand of assignment"

(* Can a value of type [src] initialise / be assigned to [dst]? *)
let assign_compat env ~dst ~src : [ `Ok | `Warn of string | `Err of string ] =
  let dst = resolve env dst and src = resolve env (decay src) in
  match dst, src with
  | t1, t2 when is_arith_ty t1 && is_arith_ty t2 -> `Ok
  | (Tbool | Tint _), Tptr _ -> `Warn "implicit pointer-to-integer conversion"
  | Tptr _, (Tbool | Tint _) -> `Warn "implicit integer-to-pointer conversion"
  | Tptr Tvoid, Tptr _ | Tptr _, Tptr Tvoid -> `Ok
  | Tptr a, Tptr b ->
    if ty_equal a b then `Ok else `Warn "incompatible pointer types"
  | Tstruct a, Tstruct b | Tunion a, Tunion b ->
    if String.equal a b then `Ok
    else `Err "incompatible struct/union assignment"
  | (Tstruct _ | Tunion _), _ | _, (Tstruct _ | Tunion _) ->
    `Err "invalid conversion involving aggregate type"
  | Tvoid, _ | _, Tvoid -> `Err "void value not ignored as it ought to be"
  | _ -> `Err "incompatible types in assignment"

(* ------------------------------------------------------------------ *)
(* Expression typing                                                   *)
(* ------------------------------------------------------------------ *)

let rec type_expr env (e : expr) : ty =
  let ty = type_expr_kind env e in
  Hashtbl.replace env.types e.eid ty;
  ty

and type_expr_kind env (e : expr) : ty =
  match e.ek with
  | Int_lit (_, k, u) -> Tint (k, not u)
  | Float_lit (_, d) -> if d then Tdouble else Tfloat
  | Char_lit _ -> Tint (Ichar, true)
  | Str_lit _ -> Tptr (Tint (Ichar, true))
  | Ident n -> (
    match lookup_var env n with
    | Some (ty, _) -> resolve env ty
    | None ->
      if Hashtbl.mem env.enum_consts n then Tint (Iint, true)
      else if Hashtbl.mem env.funcs n then begin
        let r, ps, v = Hashtbl.find env.funcs n in
        Tfunc (r, ps, v)
      end
      else begin
        error env (Fmt.str "'%s' undeclared" n);
        Tint (Iint, true)
      end)
  | Binop (op, a, b) -> (
    let ta = decay (type_expr env a) and tb = decay (type_expr env b) in
    match op with
    | Add | Sub -> (
      match ta, tb with
      | t1, t2 when is_arith_ty t1 && is_arith_ty t2 -> arith_conv t1 t2
      | Tptr t, i when is_integer_ty i -> Tptr t
      | i, Tptr t when is_integer_ty i && op = Add -> Tptr t
      | Tptr _, Tptr _ when op = Sub -> Tint (Ilong, true)
      | _ ->
        error env
          (Fmt.str "invalid operands to binary %s" (Pretty.binop_string op));
        Tint (Iint, true))
    | Mul | Div ->
      if is_arith_ty ta && is_arith_ty tb then arith_conv ta tb
      else begin
        error env
          (Fmt.str "invalid operands to binary %s" (Pretty.binop_string op));
        Tint (Iint, true)
      end
    | Mod | Shl | Shr | Band | Bxor | Bor ->
      if is_integer_ty ta && is_integer_ty tb then arith_conv ta tb
      else begin
        error env
          (Fmt.str "invalid operands to binary %s (need integer types)"
             (Pretty.binop_string op));
        Tint (Iint, true)
      end
    | Lt | Gt | Le | Ge | Eq | Ne ->
      (match ta, tb with
      | t1, t2 when is_arith_ty t1 && is_arith_ty t2 -> ()
      | Tptr _, Tptr _ -> ()
      | Tptr _, i when is_integer_ty i -> warn env "comparison between pointer and integer"
      | i, Tptr _ when is_integer_ty i -> warn env "comparison between pointer and integer"
      | _ -> error env "invalid operands to comparison");
      Tint (Iint, true)
    | Land | Lor ->
      if not (is_scalar_ty ta) || not (is_scalar_ty tb) then
        error env "invalid operands to logical operator";
      Tint (Iint, true))
  | Unop (op, a) -> (
    let ta = decay (type_expr env a) in
    match op with
    | Neg | Uplus ->
      if is_arith_ty ta then
        (match ta with Tint (k, s) when ikind_rank k < 4 -> ignore (k, s); Tint (Iint, true) | t -> t)
      else begin
        error env "wrong type argument to unary minus/plus";
        Tint (Iint, true)
      end
    | Bitnot ->
      if is_integer_ty ta then arith_conv ta (Tint (Iint, true))
      else begin
        error env "wrong type argument to bit-complement";
        Tint (Iint, true)
      end
    | Lognot ->
      if not (is_scalar_ty ta) then
        error env "wrong type argument to unary exclamation mark";
      Tint (Iint, true))
  | Assign (op, lhs, rhs) -> (
    let tl = type_expr env lhs in
    let tr = type_expr env rhs in
    (match lvalue_status env lhs with
    | Ok () -> ()
    | Stdlib.Error msg -> error env msg);
    (match op with
    | A_none -> (
      match assign_compat env ~dst:tl ~src:tr with
      | `Ok -> ()
      | `Warn m -> warn env m
      | `Err m -> error env m)
    | A_mod | A_shl | A_shr | A_band | A_bxor | A_bor ->
      if not (is_integer_ty (decay tl)) || not (is_integer_ty (decay tr)) then
        error env "invalid operands to compound assignment (need integer types)"
    | A_add | A_sub ->
      (match decay tl, decay tr with
      | t1, t2 when is_arith_ty t1 && is_arith_ty t2 -> ()
      | Tptr _, t2 when is_integer_ty t2 -> ()
      | _ -> error env "invalid operands to compound assignment")
    | A_mul | A_div ->
      if not (is_arith_ty (decay tl)) || not (is_arith_ty (decay tr)) then
        error env "invalid operands to compound assignment");
    tl)
  | Incdec (_, _, a) ->
    let ta = type_expr env a in
    (match lvalue_status env a with
    | Ok () -> ()
    | Stdlib.Error msg -> error env msg);
    if not (is_scalar_ty (decay ta)) then
      error env "wrong type argument to increment/decrement";
    ta
  | Call (f, args) -> (
    let targs = List.map (fun a -> decay (type_expr env a)) args in
    match f.ek with
    | Ident name -> (
      let sigs =
        match Hashtbl.find_opt env.funcs name with
        | Some s -> Some s
        | None -> List.assoc_opt name builtins
      in
      match sigs with
      | Some (ret, params, variadic) ->
        Hashtbl.replace env.types f.eid (Tfunc (ret, params, variadic));
        let np = List.length params and na = List.length targs in
        if na < np then
          error env (Fmt.str "too few arguments to function '%s'" name)
        else if na > np && not variadic then
          error env (Fmt.str "too many arguments to function '%s'" name)
        else
          List.iteri
            (fun i p ->
              match List.nth_opt targs i with
              | Some a -> (
                match assign_compat env ~dst:p ~src:a with
                | `Ok -> ()
                | `Warn m ->
                  warn env (Fmt.str "%s in argument %d of '%s'" m (i + 1) name)
                | `Err m ->
                  error env (Fmt.str "%s in argument %d of '%s'" m (i + 1) name))
              | None -> ())
            params;
        resolve env ret
      | None -> (
        (* calling a variable of function pointer type is unsupported *)
        match lookup_var env name with
        | Some _ ->
          error env (Fmt.str "called object '%s' is not a function" name);
          Tint (Iint, true)
        | None ->
          error env (Fmt.str "implicit declaration of function '%s'" name);
          Tint (Iint, true)))
    | _ ->
      ignore (type_expr env f);
      error env "called object is not a function";
      Tint (Iint, true))
  | Index (a, i) -> (
    let ta = decay (type_expr env a) and ti = decay (type_expr env i) in
    match ta, ti with
    | Tptr t, i' when is_integer_ty i' -> resolve env t
    | i', Tptr t when is_integer_ty i' -> resolve env t
    | _ ->
      error env "subscripted value is neither array nor pointer";
      Tint (Iint, true))
  | Member (a, fld) -> (
    let ta = type_expr env a in
    match fields_of env ta with
    | Some fields -> (
      match List.find_opt (fun f -> String.equal f.fld_name fld) fields with
      | Some f -> resolve env f.fld_ty
      | None ->
        error env (Fmt.str "no member named '%s'" fld);
        Tint (Iint, true))
    | None ->
      error env "request for member in something not a structure or union";
      Tint (Iint, true))
  | Arrow (a, fld) -> (
    let ta = decay (type_expr env a) in
    match ta with
    | Tptr inner -> (
      match fields_of env inner with
      | Some fields -> (
        match List.find_opt (fun f -> String.equal f.fld_name fld) fields with
        | Some f -> resolve env f.fld_ty
        | None ->
          error env (Fmt.str "no member named '%s'" fld);
          Tint (Iint, true))
      | None ->
        error env "arrow applied to non-struct pointer";
        Tint (Iint, true))
    | _ ->
      error env "invalid type argument of '->'";
      Tint (Iint, true))
  | Deref a -> (
    let ta = decay (type_expr env a) in
    match ta with
    | Tptr Tvoid ->
      error env "dereferencing 'void *' pointer";
      Tint (Iint, true)
    | Tptr t -> resolve env t
    | _ ->
      error env "invalid type argument of unary '*'";
      Tint (Iint, true))
  | Addrof a -> (
    let ta = type_expr env a in
    match a.ek with
    | Ident _ | Index _ | Member _ | Arrow _ | Deref _ -> Tptr ta
    | _ ->
      error env "lvalue required as unary '&' operand";
      Tptr ta)
  | Cast (ty, a) -> (
    let ty = resolve env ty in
    match a.ek with
    | Init_list items ->
      (* compound literal *)
      check_init_list env ty items;
      ty
    | _ -> (
      let ta = decay (type_expr env a) in
      match ty, ta with
      | t1, t2 when is_scalar_ty t1 && is_scalar_ty t2 -> ty
      | Tvoid, _ -> Tvoid
      | (Tstruct _ | Tunion _), _ ->
        error env "conversion to non-scalar type requested";
        ty
      | _, (Tstruct _ | Tunion _) ->
        error env "aggregate value used where a scalar was expected";
        ty
      | _ -> ty))
  | Cond (c, t, f) ->
    let tc = decay (type_expr env c) in
    if not (is_scalar_ty tc) then
      error env "used aggregate type value where scalar is required";
    let tt = decay (type_expr env t) and tf = decay (type_expr env f) in
    if is_arith_ty tt && is_arith_ty tf then arith_conv tt tf
    else if ty_equal tt tf then tt
    else begin
      (match tt, tf with
      | Tptr _, Tptr _ -> warn env "pointer type mismatch in conditional expression"
      | Tptr _, i when is_integer_ty i ->
        warn env "pointer/integer type mismatch in conditional expression"
      | i, Tptr _ when is_integer_ty i ->
        warn env "pointer/integer type mismatch in conditional expression"
      | _ -> error env "type mismatch in conditional expression");
      tt
    end
  | Comma (a, b) ->
    ignore (type_expr env a);
    type_expr env b
  | Sizeof_expr a ->
    ignore (type_expr env a);
    Tint (Ilong, false)
  | Sizeof_ty t ->
    ignore (resolve env t);
    Tint (Ilong, false)
  | Init_list items ->
    (* bare initializer list outside an initializer *)
    List.iter (fun e -> ignore (type_expr env e)) items;
    error env "braced initializer used outside initialization";
    Tint (Iint, true)

and check_init_list env ty items =
  let ty = resolve env ty in
  match ty with
  | Tarray (elt, n) ->
    (match n with
    | Some n when List.length items > n ->
      warn env "excess elements in array initializer"
    | _ -> ());
    List.iter
      (fun item ->
        match item.ek with
        | Init_list inner -> check_init_list env elt inner
        | _ -> check_scalar_init env elt item)
      items
  | Tstruct tag -> (
    match Hashtbl.find_opt env.structs tag with
    | Some fields ->
      if List.length items > List.length fields then
        warn env "excess elements in struct initializer";
      List.iteri
        (fun i item ->
          match List.nth_opt fields i with
          | Some f -> (
            match item.ek with
            | Init_list inner -> check_init_list env f.fld_ty inner
            | _ -> check_scalar_init env f.fld_ty item)
          | None -> ignore (type_expr env item))
        items
    | None -> error env (Fmt.str "initializer for incomplete type 'struct %s'" tag))
  | Tunion tag -> (
    match Hashtbl.find_opt env.unions tag with
    | Some (f :: _) -> (
      match items with
      | [ item ] -> check_scalar_init env f.fld_ty item
      | _ -> warn env "union initializer should have a single element")
    | Some [] -> ()
    | None -> error env (Fmt.str "initializer for incomplete type 'union %s'" tag))
  | scalar -> (
    (* brace-enclosed scalar initializer *)
    match items with
    | [ item ] -> check_scalar_init env scalar item
    | [] -> error env "empty scalar initializer"
    | _ -> error env "excess elements in scalar initializer")

and check_scalar_init env ty item =
  match item.ek with
  | Init_list inner ->
    if is_scalar_ty (resolve env ty) then begin
      match inner with
      | [] -> error env "empty scalar initializer"
      | [ single ] -> check_scalar_init env ty single
      | _ -> error env "excess elements in scalar initializer"
    end
    else check_init_list env ty inner
  | _ -> (
    let ti = type_expr env item in
    match assign_compat env ~dst:ty ~src:ti with
    | `Ok -> ()
    | `Warn m -> warn env (m ^ " in initialization")
    | `Err m -> error env (m ^ " in initialization"))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let check_var_decl env (v : var_decl) =
  let ty = resolve env v.v_ty in
  (match ty with
  | Tvoid -> error env (Fmt.str "variable '%s' declared void" v.v_name)
  | Tarray (_, Some n) when n <= 0 ->
    error env (Fmt.str "array '%s' has non-positive size" v.v_name)
  | Tstruct tag when not (Hashtbl.mem env.structs tag) ->
    error env (Fmt.str "storage of unknown struct '%s'" tag)
  | Tunion tag when not (Hashtbl.mem env.unions tag) ->
    error env (Fmt.str "storage of unknown union '%s'" tag)
  | _ -> ());
  (match v.v_init with
  | Some init -> (
    match init.ek with
    | Init_list items ->
      Hashtbl.replace env.types init.eid ty;
      check_init_list env ty items
    | _ -> check_scalar_init env ty init)
  | None -> ());
  declare_local env v.v_name v.v_ty v.v_quals

let rec check_stmt env (s : stmt) =
  match s.sk with
  | Sexpr e -> ignore (type_expr env e)
  | Sdecl vs -> List.iter (check_var_decl env) vs
  | Sif (c, t, f) ->
    let tc = decay (type_expr env c) in
    if not (is_scalar_ty tc) then
      error env "used aggregate type where scalar is required in if condition";
    check_stmt env t;
    Option.iter (check_stmt env) f
  | Swhile (c, b) ->
    let tc = decay (type_expr env c) in
    if not (is_scalar_ty tc) then
      error env "used aggregate type where scalar is required in loop condition";
    env.loop_depth <- env.loop_depth + 1;
    check_stmt env b;
    env.loop_depth <- env.loop_depth - 1
  | Sdo (b, c) ->
    env.loop_depth <- env.loop_depth + 1;
    check_stmt env b;
    env.loop_depth <- env.loop_depth - 1;
    let tc = decay (type_expr env c) in
    if not (is_scalar_ty tc) then
      error env "used aggregate type where scalar is required in loop condition"
  | Sfor (init, cond, step, b) ->
    push_scope env;
    (match init with
    | Some (Fi_expr e) -> ignore (type_expr env e)
    | Some (Fi_decl vs) -> List.iter (check_var_decl env) vs
    | None -> ());
    Option.iter (fun c -> ignore (type_expr env c)) cond;
    Option.iter (fun st -> ignore (type_expr env st)) step;
    env.loop_depth <- env.loop_depth + 1;
    check_stmt env b;
    env.loop_depth <- env.loop_depth - 1;
    pop_scope env
  | Sreturn e -> (
    match env.cur_func with
    | Some fd -> (
      match e, resolve env fd.f_ret with
      | None, Tvoid -> ()
      | None, _ ->
        warn env
          (Fmt.str "'return' with no value, in function '%s' returning non-void"
             fd.f_name)
      | Some e, Tvoid ->
        ignore (type_expr env e);
        error env
          (Fmt.str "'return' with a value, in function '%s' returning void"
             fd.f_name)
      | Some e, ret -> (
        let te = type_expr env e in
        match assign_compat env ~dst:ret ~src:te with
        | `Ok -> ()
        | `Warn m -> warn env (m ^ " in return")
        | `Err m -> error env (m ^ " in return")))
    | None -> ())
  | Sbreak ->
    if env.loop_depth = 0 && env.switch_depth = 0 then
      error env "break statement not within loop or switch"
  | Scontinue ->
    if env.loop_depth = 0 then
      error env "continue statement not within a loop"
  | Sblock ss ->
    push_scope env;
    List.iter (check_stmt env) ss;
    pop_scope env
  | Sswitch (e, cases) ->
    let te = decay (type_expr env e) in
    if not (is_integer_ty te) then
      error env "switch quantity not an integer";
    env.switch_depth <- env.switch_depth + 1;
    let defaults = ref 0 in
    let seen_values = Hashtbl.create 8 in
    List.iter
      (fun c ->
        List.iter
          (function
            | L_case ce -> (
              let tc = decay (type_expr env ce) in
              if not (is_integer_ty tc) then
                error env "case label does not reduce to an integer constant";
              match Const_eval.eval_int ce with
              | Some v ->
                if Hashtbl.mem seen_values v then
                  error env (Fmt.str "duplicate case value %Ld" v)
                else Hashtbl.replace seen_values v ()
              | None ->
                if not (Const_eval.is_constant_expr ce) then
                  error env "case label does not reduce to an integer constant")
            | L_default ->
              incr defaults;
              if !defaults > 1 then
                error env "multiple default labels in one switch")
          c.case_labels;
        push_scope env;
        List.iter (check_stmt env) c.case_body;
        pop_scope env)
      cases;
    env.switch_depth <- env.switch_depth - 1
  | Sgoto l -> env.gotos <- l :: env.gotos
  | Slabel (l, inner) ->
    if Hashtbl.mem env.labels l then
      error env (Fmt.str "duplicate label '%s'" l)
    else Hashtbl.replace env.labels l ();
    check_stmt env inner
  | Snull -> ()

let check_function env (fd : fundef) =
  env.cur_func <- Some fd;
  env.labels <- Hashtbl.create 8;
  env.gotos <- [];
  env.loop_depth <- 0;
  env.switch_depth <- 0;
  push_scope env;
  List.iter
    (fun p ->
      if p.p_name = "" then warn env "unnamed function parameter"
      else declare_local env p.p_name p.p_ty no_quals)
    fd.f_params;
  List.iter (check_stmt env) fd.f_body;
  List.iter
    (fun l ->
      if not (Hashtbl.mem env.labels l) then
        error env (Fmt.str "label '%s' used but not defined" l))
    env.gotos;
  pop_scope env;
  env.cur_func <- None

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let check ?types (tu : tu) : result =
  (* [types] lets the compile hot path recycle one grown table across
     compiles (the caller must be done with the previous result's
     [r_types] — it is cleared here, not copied). *)
  let types =
    match types with
    | Some t ->
      Hashtbl.clear t;
      t
    | None -> Hashtbl.create 256
  in
  let env =
    {
      structs = Hashtbl.create 8;
      unions = Hashtbl.create 8;
      typedefs = Hashtbl.create 8;
      enum_consts = Hashtbl.create 8;
      funcs = Hashtbl.create 16;
      globals = Hashtbl.create 16;
      vars = Hashtbl.create 64;
      depth = 0;
      trail = [];
      types;
      diags = [];
      cur_func = None;
      loop_depth = 0;
      switch_depth = 0;
      labels = Hashtbl.create 8;
      gotos = [];
    }
  in
  List.iter (fun (n, s) -> Hashtbl.replace env.funcs n s) builtins;
  (* first pass: collect type and function declarations *)
  List.iter
    (function
      | Gstruct (tag, fields) -> Hashtbl.replace env.structs tag fields
      | Gunion (tag, fields) -> Hashtbl.replace env.unions tag fields
      | Gtypedef (name, ty) -> Hashtbl.replace env.typedefs name ty
      | Genum (_, items) ->
        let next = ref 0L in
        List.iter
          (fun (n, v) ->
            let v = match v with Some v -> v | None -> !next in
            Hashtbl.replace env.enum_consts n v;
            next := Int64.add v 1L)
          items
      | Gproto p ->
        Hashtbl.replace env.funcs p.pr_name (p.pr_ret, p.pr_params, p.pr_variadic)
      | Gfun fd ->
        if Hashtbl.mem env.funcs fd.f_name
           && not (List.mem_assoc fd.f_name builtins) then begin
          (* redefinition only if a body already exists *)
          ()
        end;
        Hashtbl.replace env.funcs fd.f_name
          (fd.f_ret, List.map (fun p -> p.p_ty) fd.f_params, fd.f_variadic)
      | Gvar v -> Hashtbl.replace env.globals v.v_name (v.v_ty, v.v_quals))
    tu.globals;
  (* detect duplicate function bodies *)
  let bodies = Hashtbl.create 16 in
  List.iter
    (function
      | Gfun fd ->
        if Hashtbl.mem bodies fd.f_name then
          error env (Fmt.str "redefinition of function '%s'" fd.f_name)
        else Hashtbl.replace bodies fd.f_name ()
      | _ -> ())
    tu.globals;
  (* second pass: check global initializers and function bodies *)
  List.iter
    (function
      | Gvar v ->
        (match resolve env v.v_ty with
        | Tvoid -> error env (Fmt.str "variable '%s' declared void" v.v_name)
        | _ -> ());
        (match v.v_init with
        | Some init -> (
          push_scope env;
          (match init.ek with
          | Init_list items ->
            Hashtbl.replace env.types init.eid (resolve env v.v_ty);
            check_init_list env (resolve env v.v_ty) items
          | _ ->
            check_scalar_init env (resolve env v.v_ty) init;
            if not (Const_eval.is_constant_expr init) then
              error env
                (Fmt.str "initializer element for '%s' is not constant" v.v_name));
          pop_scope env)
        | None -> ())
      | Gfun fd -> check_function env fd
      | Gstruct (_, fields) | Gunion (_, fields) ->
        List.iter
          (fun f ->
            match resolve env f.fld_ty with
            | Tvoid -> error env (Fmt.str "field '%s' declared void" f.fld_name)
            | _ -> ())
          fields
      | Gtypedef _ | Genum _ | Gproto _ -> ())
    tu.globals;
  let diags = List.rev env.diags in
  {
    r_diags = diags;
    r_types = env.types;
    r_ok = not (List.exists (fun d -> d.sev = Error) diags);
  }

let errors r = List.filter (fun d -> d.sev = Error) r.r_diags
let warnings r = List.filter (fun d -> d.sev = Warning) r.r_diags

let diag_to_string d =
  Fmt.str "%s: %s%s"
    (match d.sev with Error -> "error" | Warning -> "warning")
    d.msg
    (match d.in_func with Some f -> Fmt.str " [in '%s']" f | None -> "")

(* Convenience: does this source compile? *)
let compiles_src (src : string) : bool =
  match Parser.parse src with
  | Ok tu -> (check tu).r_ok
  | Error _ -> false
