(* Generic traversal and rewriting combinators over the AST.

   [map_*] apply a transformation bottom-up (children first, then the node
   itself), which lets a rewrite function simply test [e.eid] against a
   target id and return a replacement.  [iter_*] visit nodes top-down.

   Both families are allocation-lean: the recursive workers are hoisted
   so no closure is built per node, and [map_*] preserve physical
   identity — a node whose children came back unchanged and whose
   rewrite function returned it untouched is returned as-is, not
   rebuilt.  A mutator that edits one node therefore shares every
   untouched subtree with the input; the AST is immutable, so sharing is
   observationally equivalent to the old deep copy. *)

open Ast

(* ------------------------------------------------------------------ *)
(* Mapping                                                             *)
(* ------------------------------------------------------------------ *)

(* [List.map f l] returning [l] itself when every element mapped to
   itself (physically). *)
let rec map_list_same f = function
  | [] -> []
  | x :: tl as l ->
    let x' = f x in
    let tl' = map_list_same f tl in
    if x' == x && tl' == tl then l else x' :: tl'

let opt_map_same f = function
  | None -> None
  | Some x as o ->
    let x' = f x in
    if x' == x then o else Some x'

let map_expr f (e : expr) : expr =
  let rec recur (e : expr) =
    let ek =
      match e.ek with
      | Int_lit _ | Float_lit _ | Char_lit _ | Str_lit _ | Ident _
      | Sizeof_ty _ ->
        e.ek
      | Binop (op, a, b) ->
        let a' = recur a and b' = recur b in
        if a' == a && b' == b then e.ek else Binop (op, a', b')
      | Unop (op, a) ->
        let a' = recur a in
        if a' == a then e.ek else Unop (op, a')
      | Assign (op, a, b) ->
        let a' = recur a and b' = recur b in
        if a' == a && b' == b then e.ek else Assign (op, a', b')
      | Incdec (i, p, a) ->
        let a' = recur a in
        if a' == a then e.ek else Incdec (i, p, a')
      | Call (g, args) ->
        let g' = recur g and args' = map_list_same recur args in
        if g' == g && args' == args then e.ek else Call (g', args')
      | Index (a, b) ->
        let a' = recur a and b' = recur b in
        if a' == a && b' == b then e.ek else Index (a', b')
      | Member (a, n) ->
        let a' = recur a in
        if a' == a then e.ek else Member (a', n)
      | Arrow (a, n) ->
        let a' = recur a in
        if a' == a then e.ek else Arrow (a', n)
      | Deref a ->
        let a' = recur a in
        if a' == a then e.ek else Deref a'
      | Addrof a ->
        let a' = recur a in
        if a' == a then e.ek else Addrof a'
      | Cast (t, a) ->
        let a' = recur a in
        if a' == a then e.ek else Cast (t, a')
      | Cond (c, t, f') ->
        let c' = recur c and t' = recur t and f'' = recur f' in
        if c' == c && t' == t && f'' == f' then e.ek else Cond (c', t', f'')
      | Comma (a, b) ->
        let a' = recur a and b' = recur b in
        if a' == a && b' == b then e.ek else Comma (a', b')
      | Sizeof_expr a ->
        let a' = recur a in
        if a' == a then e.ek else Sizeof_expr a'
      | Init_list es ->
        let es' = map_list_same recur es in
        if es' == es then e.ek else Init_list es'
    in
    f (if ek == e.ek then e else { e with ek })
  in
  recur e

let map_var_decl fe (v : var_decl) =
  let init' = opt_map_same (map_expr fe) v.v_init in
  if init' == v.v_init then v else { v with v_init = init' }

let map_stmt ~fe ~fs (s : stmt) : stmt =
  let me = map_expr fe in
  let mv = map_var_decl fe in
  let rec ms (s : stmt) =
    let sk =
      match s.sk with
      | Sexpr e ->
        let e' = me e in
        if e' == e then s.sk else Sexpr e'
      | Sdecl vs ->
        let vs' = map_list_same mv vs in
        if vs' == vs then s.sk else Sdecl vs'
      | Sif (c, t, f) ->
        let c' = me c and t' = ms t and f' = opt_map_same ms f in
        if c' == c && t' == t && f' == f then s.sk else Sif (c', t', f')
      | Swhile (c, b) ->
        let c' = me c and b' = ms b in
        if c' == c && b' == b then s.sk else Swhile (c', b')
      | Sdo (b, c) ->
        let b' = ms b and c' = me c in
        if b' == b && c' == c then s.sk else Sdo (b', c')
      | Sfor (init, cond, step, b) ->
        let init' =
          opt_map_same
            (fun fi ->
              match fi with
              | Fi_expr e ->
                let e' = me e in
                if e' == e then fi else Fi_expr e'
              | Fi_decl vs ->
                let vs' = map_list_same mv vs in
                if vs' == vs then fi else Fi_decl vs')
            init
        in
        let cond' = opt_map_same me cond in
        let step' = opt_map_same me step in
        let b' = ms b in
        if init' == init && cond' == cond && step' == step && b' == b then
          s.sk
        else Sfor (init', cond', step', b')
      | Sreturn e ->
        let e' = opt_map_same me e in
        if e' == e then s.sk else Sreturn e'
      | Sbreak | Scontinue | Sgoto _ | Snull -> s.sk
      | Sblock ss ->
        let ss' = map_list_same ms ss in
        if ss' == ss then s.sk else Sblock ss'
      | Sswitch (e, cases) ->
        let map_case c =
          let case_labels =
            map_list_same
              (fun l ->
                match l with
                | L_case e ->
                  let e' = me e in
                  if e' == e then l else L_case e'
                | L_default -> l)
              c.case_labels
          in
          let case_body = map_list_same ms c.case_body in
          if case_labels == c.case_labels && case_body == c.case_body then c
          else { case_labels; case_body }
        in
        let e' = me e and cases' = map_list_same map_case cases in
        if e' == e && cases' == cases then s.sk else Sswitch (e', cases')
      | Slabel (l, inner) ->
        let inner' = ms inner in
        if inner' == inner then s.sk else Slabel (l, inner')
    in
    fs (if sk == s.sk then s else { s with sk })
  in
  ms s

let map_fundef ~fe ~fs (fd : fundef) =
  let body' = map_list_same (map_stmt ~fe ~fs) fd.f_body in
  if body' == fd.f_body then fd else { fd with f_body = body' }

let map_tu ?(fe = fun e -> e) ?(fs = fun s -> s) (tu : tu) : tu =
  let map_global g =
    match g with
    | Gfun fd ->
      let fd' = map_fundef ~fe ~fs fd in
      if fd' == fd then g else Gfun fd'
    | Gvar v ->
      let v' = map_var_decl fe v in
      if v' == v then g else Gvar v'
    | Gtypedef _ | Gstruct _ | Gunion _ | Genum _ | Gproto _ -> g
  in
  let globals' = map_list_same map_global tu.globals in
  if globals' == tu.globals then tu else { globals = globals' }

(* Replace the expression with id [eid] by [repl] everywhere. *)
let replace_expr tu ~eid ~repl =
  map_tu tu ~fe:(fun e -> if e.eid = eid then repl else e)

(* Replace the statement with id [sid] by [repl]. *)
let replace_stmt tu ~sid ~repl =
  map_tu tu ~fs:(fun s -> if s.sid = sid then repl else s)

(* Remove the statement with id [sid]; it becomes a null statement.  When a
   block contains it directly the null statement is dropped. *)
let remove_stmt tu ~sid =
  let tu = replace_stmt tu ~sid ~repl:(mk_stmt Snull) in
  let prune s =
    match s.sk with
    | Sblock ss ->
      { s with sk = Sblock (List.filter (fun s' -> s'.sk <> Snull) ss) }
    | _ -> s
  in
  map_tu tu ~fs:prune

(* ------------------------------------------------------------------ *)
(* Iteration                                                           *)
(* ------------------------------------------------------------------ *)

let iter_expr f (e : expr) =
  let rec recur (e : expr) =
    f e;
    match e.ek with
    | Int_lit _ | Float_lit _ | Char_lit _ | Str_lit _ | Ident _
    | Sizeof_ty _ ->
      ()
    | Binop (_, a, b) | Assign (_, a, b) | Index (a, b) | Comma (a, b) ->
      recur a; recur b
    | Unop (_, a) | Incdec (_, _, a) | Member (a, _) | Arrow (a, _)
    | Deref a | Addrof a | Cast (_, a) | Sizeof_expr a -> recur a
    | Call (g, args) -> recur g; List.iter recur args
    | Cond (c, t, f') -> recur c; recur t; recur f'
    | Init_list es -> List.iter recur es
  in
  recur e

let iter_var_decl fe (v : var_decl) = Option.iter (iter_expr fe) v.v_init

let iter_stmt ~fe ~fs (s : stmt) =
  let ie e = iter_expr fe e in
  let iv v = iter_var_decl fe v in
  let rec is' (s : stmt) =
    fs s;
    match s.sk with
    | Sexpr e -> ie e
    | Sdecl vs -> List.iter iv vs
    | Sif (c, t, f) -> ie c; is' t; Option.iter is' f
    | Swhile (c, b) -> ie c; is' b
    | Sdo (b, c) -> is' b; ie c
    | Sfor (init, cond, step, b) ->
      Option.iter
        (function
          | Fi_expr e -> ie e
          | Fi_decl vs -> List.iter iv vs)
        init;
      Option.iter ie cond;
      Option.iter ie step;
      is' b
    | Sreturn e -> Option.iter ie e
    | Sbreak | Scontinue | Sgoto _ | Snull -> ()
    | Sblock ss -> List.iter is' ss
    | Sswitch (e, cases) ->
      ie e;
      List.iter
        (fun c ->
          List.iter
            (function L_case e -> ie e | L_default -> ())
            c.case_labels;
          List.iter is' c.case_body)
        cases
    | Slabel (_, inner) -> is' inner
  in
  is' s

let iter_tu ?(fe = fun _ -> ()) ?(fs = fun _ -> ()) (tu : tu) =
  List.iter
    (function
      | Gfun fd -> List.iter (iter_stmt ~fe ~fs) fd.f_body
      | Gvar v -> iter_var_decl fe v
      | Gtypedef _ | Gstruct _ | Gunion _ | Genum _ | Gproto _ -> ())
    tu.globals

(* Iterate with the enclosing function definition available. *)
let iter_tu_in_functions tu ~f =
  List.iter
    (function
      | Gfun fd -> f fd
      | Gvar _ | Gtypedef _ | Gstruct _ | Gunion _ | Genum _ | Gproto _ -> ())
    tu.globals

(* ------------------------------------------------------------------ *)
(* Folds and queries                                                   *)
(* ------------------------------------------------------------------ *)

let collect_exprs pred tu =
  let acc = ref [] in
  iter_tu tu ~fe:(fun e -> if pred e then acc := e :: !acc);
  List.rev !acc

let collect_stmts pred tu =
  let acc = ref [] in
  iter_tu tu ~fs:(fun s -> if pred s then acc := s :: !acc);
  List.rev !acc

let count_exprs pred tu = List.length (collect_exprs pred tu)
let count_stmts pred tu = List.length (collect_stmts pred tu)

let find_expr tu ~eid =
  let found = ref None in
  iter_tu tu ~fe:(fun e -> if e.eid = eid && !found = None then found := Some e);
  !found

let find_stmt tu ~sid =
  let found = ref None in
  iter_tu tu ~fs:(fun s -> if s.sid = sid && !found = None then found := Some s);
  !found

let functions tu =
  List.filter_map
    (function Gfun fd -> Some fd | _ -> None)
    tu.globals

let global_vars tu =
  List.filter_map (function Gvar v -> Some v | _ -> None) tu.globals
