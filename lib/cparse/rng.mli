(** Deterministic splitmix64 random number generator.

    Every stochastic component in the reproduction (program generators,
    fuzzers, the LLM oracle) draws from an explicit [t], so every
    experiment reproduces bit-for-bit from an integer seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. *)

val copy : t -> t
(** Independent duplicate of the current state. *)

val next_int64 : t -> int64
(** Raw 64-bit output (splitmix64). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Raises [Invalid_argument]
    when [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val bool : t -> bool
(** Fair coin. *)

val flip : t -> float -> bool
(** [flip t p] is true with probability [p]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list.  Raises on the empty list. *)

val choose_opt : t -> 'a list -> 'a option
(** Like {!choose} but total. *)

val choose_arr : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val weighted : t -> (int * 'a) list -> 'a
(** Weighted choice from [(weight, value)] pairs; zero-weight entries are
    never chosen. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates permutation. *)

val split : t -> t
(** Split off an independent stream (for per-task determinism). *)

val state : t -> int64
(** The raw generator state, for checkpointing. *)

val set_state : t -> int64 -> unit
(** Restore a state captured by {!state}: the generator replays the
    exact draw sequence from that point. *)
