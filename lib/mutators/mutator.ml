(* The mutator abstraction.

   A mutator is a semantic-aware small-step program transformation with a
   natural-language name and description (in the paper these are invented
   and implemented by the LLM; here the corpus is the reproduction of the
   118 published mutators).  [mutate] returns [None] when the targeted
   program structure is absent ("not applicable"). *)

open Cparse

type category = Variable | Expression | Statement | Function | Type_

type provenance = Supervised | Unsupervised

type t = {
  name : string;
  description : string;
  category : category;
  provenance : provenance;
  creative : bool;
      (* true when the description deviates from the strict
         "perform [Action] on [Program Structure]" template *)
  mutate : Uast.Ctx.t -> Ast.tu option;
}

let category_to_string = function
  | Variable -> "Variable"
  | Expression -> "Expression"
  | Statement -> "Statement"
  | Function -> "Function"
  | Type_ -> "Type"

let provenance_to_string = function
  | Supervised -> "supervised"
  | Unsupervised -> "unsupervised"

let make ~name ~description ~category ~provenance ?(creative = false) mutate =
  { name; description; category; provenance; creative; mutate }

exception Mutator_crash of string
exception Mutator_hang of string

(* Apply a mutator through an existing context (several mutators probing
   one unit share its semantic analysis).  The name supply is rewound
   first, so each application sees the context exactly as created.  The
   result is canonicalised but NOT renumbered — callers that render or
   compile the mutant don't read ids, and a later [Uast.Ctx.create]
   restores the invariant on demand; skipping the renumber lets the
   mutant share every untouched subtree with the input. *)
let apply_ctx (m : t) (ctx : Uast.Ctx.t) : Ast.tu option =
  Uast.Ctx.reset_names ctx;
  match m.mutate ctx with
  | Some tu' -> Some (Ast_ids.canonicalize tu')
  | None -> None

(* Apply a mutator to a translation unit.  The result is renumbered so
   the unique-id invariant holds for the next round. *)
let apply (m : t) ~(rng : Rng.t) (tu : Ast.tu) : Ast.tu option =
  let ctx = Uast.Ctx.create ~rng tu in
  match m.mutate ctx with
  | Some tu' -> Some (Ast_ids.renumber tu')
  | None -> None

(* Apply to source text: parse, mutate, pretty-print. *)
let apply_src (m : t) ~(rng : Rng.t) (src : string) : string option =
  match Parser.parse src with
  | Ok tu -> Option.map Pretty.tu_to_string (apply m ~rng tu)
  | Error _ -> None
