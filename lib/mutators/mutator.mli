(** The mutator abstraction.

    A mutator is a semantic-aware small-step program transformation with
    a natural-language name and description — in the paper these are
    invented and implemented by an LLM; here the corpus reimplements the
    118 published mutators (see {!Registry}). *)

type category = Variable | Expression | Statement | Function | Type_
(** The paper's five target-structure categories (§4.1). *)

type provenance = Supervised | Unsupervised
(** Ms (prompt-engineered with manual fixes) vs Mu (fully automatic). *)

type t = {
  name : string;
  description : string;  (** verbatim natural-language description *)
  category : category;
  provenance : provenance;
  creative : bool;
      (** deviates from the strict "perform [Action] on
          [Program Structure]" template (33 of the 118) *)
  mutate : Uast.Ctx.t -> Cparse.Ast.tu option;
      (** [None] when the targeted program structure is absent *)
}

val category_to_string : category -> string
val provenance_to_string : provenance -> string

val make :
  name:string ->
  description:string ->
  category:category ->
  provenance:provenance ->
  ?creative:bool ->
  (Uast.Ctx.t -> Cparse.Ast.tu option) ->
  t
(** Define a mutator; [creative] defaults to [false]. *)

exception Mutator_crash of string
exception Mutator_hang of string

val apply : t -> rng:Cparse.Rng.t -> Cparse.Ast.tu -> Cparse.Ast.tu option
(** Apply the mutator under a fresh semantic context; the result is
    renumbered so the unique-id invariant holds for the next round. *)

val apply_ctx : t -> Uast.Ctx.t -> Cparse.Ast.tu option
(** Like {!apply} but through an existing context: a fuzz iteration
    probing one unit with several mutators pays for the semantic
    analysis once.  The context's name supply is rewound before the
    application, so the result renders byte-identically to a
    fresh-context {!apply}'s.  Unlike {!apply} the mutant is NOT
    renumbered (it shares untouched subtrees with the input and its ids
    may be stale or duplicated) — render or compile it, or let a later
    {!Uast.Ctx.create} renumber on demand before chaining mutations. *)

val apply_src : t -> rng:Cparse.Rng.t -> string -> string option
(** Parse, mutate, pretty-print.  [None] when the source does not parse
    or the mutator is not applicable. *)
