(* Tests for the execution engine: metrics registry (histogram bucket
   boundaries, snapshots, merge), event bus sinks (ring overflow,
   metrics sink), spans, the Domain scheduler, and the campaign
   determinism guarantee (jobs:1 ≡ jobs:4). *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let metrics_tests =
  [
    tc "counter increments and snapshots" (fun () ->
        let reg = Engine.Metrics.create () in
        let c = Engine.Metrics.counter reg "a" in
        Engine.Metrics.incr c;
        Engine.Metrics.incr ~by:4 c;
        check Alcotest.int "value" 5 (Engine.Metrics.counter_value c);
        (* find-or-create returns the same instrument *)
        Engine.Metrics.incr (Engine.Metrics.counter reg "a");
        match Engine.Metrics.snapshot reg with
        | [ ("a", Engine.Metrics.Counter 6) ] -> ()
        | _ -> Alcotest.fail "unexpected snapshot");
    tc "histogram bucket boundaries" (fun () ->
        let reg = Engine.Metrics.create () in
        let h =
          Engine.Metrics.histogram ~edges:[| 1.; 2.; 5. |] reg "h"
        in
        (* v <= edge lands in that bucket; above the last edge overflows *)
        check Alcotest.int "below first" 0 (Engine.Metrics.bucket_index h 0.5);
        check Alcotest.int "on first edge" 0 (Engine.Metrics.bucket_index h 1.);
        check Alcotest.int "between" 1 (Engine.Metrics.bucket_index h 1.5);
        check Alcotest.int "on last edge" 2 (Engine.Metrics.bucket_index h 5.);
        check Alcotest.int "overflow" 3 (Engine.Metrics.bucket_index h 7.);
        List.iter (Engine.Metrics.observe h) [ 0.5; 1.; 1.5; 5.; 7. ];
        (match Engine.Metrics.snapshot reg with
        | [ ("h", Engine.Metrics.Histogram { counts; total; sum; _ }) ] ->
          check (Alcotest.array Alcotest.int) "counts" [| 2; 1; 1; 1 |] counts;
          check Alcotest.int "total" 5 total;
          check (Alcotest.float 1e-9) "sum" 15. sum
        | _ -> Alcotest.fail "unexpected snapshot");
        check (Alcotest.float 1e-9) "mean" 3. (Engine.Metrics.histogram_mean h));
    tc "histogram rejects bad edges" (fun () ->
        let reg = Engine.Metrics.create () in
        Alcotest.check_raises "empty" (Invalid_argument
          "Metrics.histogram: empty bucket edges") (fun () ->
            ignore (Engine.Metrics.histogram ~edges:[||] reg "e"));
        Alcotest.check_raises "non-increasing" (Invalid_argument
          "Metrics.histogram: bucket edges must strictly increase") (fun () ->
            ignore (Engine.Metrics.histogram ~edges:[| 2.; 1. |] reg "d")));
    tc "merge adds counters and histogram buckets" (fun () ->
        let a = Engine.Metrics.create () and b = Engine.Metrics.create () in
        Engine.Metrics.incr ~by:2 (Engine.Metrics.counter a "c");
        Engine.Metrics.incr ~by:3 (Engine.Metrics.counter b "c");
        Engine.Metrics.incr (Engine.Metrics.counter b "only-b");
        let edges = [| 1.; 10. |] in
        Engine.Metrics.observe (Engine.Metrics.histogram ~edges a "h") 0.5;
        Engine.Metrics.observe (Engine.Metrics.histogram ~edges b "h") 5.;
        Engine.Metrics.merge ~into:a b;
        check Alcotest.int "counter summed" 5
          (Engine.Metrics.counter_value (Engine.Metrics.counter a "c"));
        check Alcotest.int "new counter copied" 1
          (Engine.Metrics.counter_value (Engine.Metrics.counter a "only-b"));
        match List.assoc "h" (Engine.Metrics.snapshot a) with
        | Engine.Metrics.Histogram { counts; total; _ } ->
          check (Alcotest.array Alcotest.int) "buckets" [| 1; 1; 0 |] counts;
          check Alcotest.int "total" 2 total
        | _ -> Alcotest.fail "histogram missing");
    tc "histogram_quantile interpolates, clamps, and handles empties" (fun () ->
        let reg = Engine.Metrics.create () in
        let h = Engine.Metrics.histogram ~edges:[| 1.; 10. |] reg "q" in
        check (Alcotest.float 1e-9) "empty histogram reads 0" 0.
          (Engine.Metrics.histogram_quantile h 0.5);
        (* one observation per bucket: (0,1], (1,10], overflow *)
        List.iter (Engine.Metrics.observe h) [ 0.5; 5.; 20. ];
        (* p50: rank 1.5 falls in the second bucket, halfway in *)
        check (Alcotest.float 1e-9) "p50 interpolated" 5.5
          (Engine.Metrics.histogram_quantile h 0.5);
        (* p95: rank 2.85 falls in the overflow bucket -> top edge *)
        check (Alcotest.float 1e-9) "overflow clamps to top edge" 10.
          (Engine.Metrics.histogram_quantile h 0.95);
        (* out-of-range q is clamped *)
        check (Alcotest.float 1e-9) "q > 1 clamps" 10.
          (Engine.Metrics.histogram_quantile h 2.);
        (* quantile_of works straight off snapshot data *)
        match List.assoc "q" (Engine.Metrics.snapshot reg) with
        | Engine.Metrics.Histogram { edges; counts; total; _ } ->
          check (Alcotest.float 1e-9) "quantile_of agrees" 5.5
            (Engine.Metrics.quantile_of ~edges ~counts ~total 0.5)
        | _ -> Alcotest.fail "histogram missing");
    tc "counters_with_prefix strips and sorts" (fun () ->
        let reg = Engine.Metrics.create () in
        Engine.Metrics.incr ~by:7 (Engine.Metrics.counter reg "p.zeta");
        Engine.Metrics.incr ~by:2 (Engine.Metrics.counter reg "p.alpha");
        Engine.Metrics.incr (Engine.Metrics.counter reg "other");
        check
          Alcotest.(list (pair string int))
          "family"
          [ ("alpha", 2); ("zeta", 7) ]
          (Engine.Metrics.counters_with_prefix reg ~prefix:"p."));
  ]

let event_tests =
  [
    tc "counter snapshot after a known event sequence" (fun () ->
        let reg = Engine.Metrics.create () in
        let bus = Engine.Event.bus () in
        Engine.Event.add_sink bus (Engine.Event.metrics_sink reg);
        List.iter
          (Engine.Event.emit bus)
          [
            Engine.Event.Mutant_attempted { mutator = "Ret2V" };
            Engine.Event.Mutant_attempted { mutator = "CopyExpr" };
            Engine.Event.Compile_finished
              (Engine.Event.Compiled_ok, Engine.Event.Backend);
            Engine.Event.Crash_found
              { key = "f|g"; stage = Engine.Event.Opt; iteration = 3 };
            Engine.Event.Pipeline_goal (4, true);
            Engine.Event.Mutant_attempted { mutator = "Ret2V" };
          ];
        let get name =
          Engine.Metrics.counter_value (Engine.Metrics.counter reg name)
        in
        check Alcotest.int "attempts" 3 (get "event.mutant_attempted");
        check Alcotest.int "compiles" 1 (get "event.compile_finished");
        check Alcotest.int "crashes" 1 (get "event.crash_found");
        check Alcotest.int "goals" 1 (get "event.pipeline_goal"));
    tc "ring sink keeps the newest events on overflow" (fun () ->
        let ring, sink = Engine.Event.ring_sink ~capacity:4 in
        let bus = Engine.Event.bus () in
        Engine.Event.add_sink bus sink;
        for i = 1 to 10 do
          Engine.Event.emit bus (Engine.Event.Custom (string_of_int i))
        done;
        check Alcotest.int "seen" 10 (Engine.Event.ring_seen ring);
        check Alcotest.int "dropped" 6 (Engine.Event.ring_dropped ring);
        check
          Alcotest.(list string)
          "newest retained, oldest first"
          [ "7"; "8"; "9"; "10" ]
          (List.map
             (function Engine.Event.Custom s -> s | _ -> "?")
             (Engine.Event.ring_contents ring)));
    tc "ring below capacity drops nothing" (fun () ->
        let ring, sink = Engine.Event.ring_sink ~capacity:8 in
        sink.Engine.Event.emit (Engine.Event.Custom "x");
        check Alcotest.int "dropped" 0 (Engine.Event.ring_dropped ring);
        check Alcotest.int "kept" 1
          (List.length (Engine.Event.ring_contents ring)));
    tc "text sink renders one line per event" (fun () ->
        let lines = ref [] in
        let bus = Engine.Event.bus () in
        Engine.Event.add_sink bus
          (Engine.Event.text_sink ~out:(fun l -> lines := l :: !lines));
        Engine.Event.emit bus
          (Engine.Event.Coverage_sampled { iteration = 25; covered = 600 });
        Engine.Event.emit bus (Engine.Event.Pipeline_goal (2, false));
        check
          Alcotest.(list string)
          "lines"
          [ "coverage-sampled 600 @25"; "pipeline-goal #2 unfixed" ]
          (List.rev !lines));
    tc "remove_sink detaches exactly that sink" (fun () ->
        let ring, sink = Engine.Event.ring_sink ~capacity:4 in
        let bus = Engine.Event.bus () in
        Engine.Event.add_sink bus sink;
        Engine.Event.emit bus (Engine.Event.Custom "a");
        Engine.Event.remove_sink bus sink;
        Engine.Event.emit bus (Engine.Event.Custom "b");
        check Alcotest.int "only first seen" 1 (Engine.Event.ring_seen ring));
  ]

let span_tests =
  [
    tc "spans record count and duration into the registry" (fun () ->
        (* a fake clock makes durations deterministic *)
        let t = ref 0L in
        let clock () =
          t := Int64.add !t 1500L;
          !t
        in
        let ctx = Engine.Ctx.create ~clock () in
        let v = Engine.Span.with_ ctx ~name:"stage" (fun () -> 42) in
        check Alcotest.int "value" 42 v;
        (match
           List.assoc "span.stage"
             (Engine.Metrics.snapshot ctx.Engine.Ctx.metrics)
         with
        | Engine.Metrics.Histogram { total; sum; _ } ->
          check Alcotest.int "one span" 1 total;
          check (Alcotest.float 1e-9) "1500ns" 1500. sum
        | _ -> Alcotest.fail "span histogram missing"));
    tc "spans record when the computation raises" (fun () ->
        let ctx = Engine.Ctx.create () in
        (try
           Engine.Span.with_ ctx ~name:"boom" (fun () -> failwith "x")
         with Failure _ -> ());
        match
          List.assoc "span.boom"
            (Engine.Metrics.snapshot ctx.Engine.Ctx.metrics)
        with
        | Engine.Metrics.Histogram { total; _ } ->
          check Alcotest.int "recorded" 1 total
        | _ -> Alcotest.fail "span histogram missing");
  ]

let vec_tests =
  [
    tc "push/get/length across growth" (fun () ->
        let v = Engine.Vec.create () in
        for i = 0 to 99 do
          Engine.Vec.push v (i * i)
        done;
        check Alcotest.int "length" 100 (Engine.Vec.length v);
        for i = 0 to 99 do
          check Alcotest.int "element" (i * i) (Engine.Vec.get v i)
        done;
        Alcotest.check_raises "out of bounds"
          (Invalid_argument "Vec.get: index out of bounds") (fun () ->
            ignore (Engine.Vec.get v 100)));
    tc "of_list/to_list round-trip and iter order" (fun () ->
        let v = Engine.Vec.of_list [ "a"; "b"; "c" ] in
        Engine.Vec.push v "d";
        check Alcotest.(list string) "to_list" [ "a"; "b"; "c"; "d" ]
          (Engine.Vec.to_list v);
        let seen = ref [] in
        Engine.Vec.iter (fun x -> seen := x :: !seen) v;
        check Alcotest.(list string) "iter order" [ "a"; "b"; "c"; "d" ]
          (List.rev !seen));
    tc "empty vector" (fun () ->
        let v : int Engine.Vec.t = Engine.Vec.create () in
        check Alcotest.int "length" 0 (Engine.Vec.length v);
        check Alcotest.(list int) "to_list" [] (Engine.Vec.to_list v));
    tc "to_array/of_array round-trip without aliasing" (fun () ->
        let v = Engine.Vec.of_list [ 1; 2; 3 ] in
        Engine.Vec.push v 4;
        let a = Engine.Vec.to_array v in
        check (Alcotest.array Alcotest.int) "live elements" [| 1; 2; 3; 4 |] a;
        (* the snapshot is a copy: later pushes don't show in it *)
        Engine.Vec.push v 5;
        check Alcotest.int "snapshot unchanged" 4 (Array.length a);
        let v' = Engine.Vec.of_array a in
        a.(0) <- 99;
        check Alcotest.int "of_array copied" 1 (Engine.Vec.get v' 0);
        check Alcotest.(list int) "round-trip" [ 1; 2; 3; 4 ]
          (Engine.Vec.to_list v'));
    tc "clear keeps capacity and resets length" (fun () ->
        let v = Engine.Vec.of_list [ 1; 2; 3 ] in
        Engine.Vec.clear v;
        check Alcotest.int "length" 0 (Engine.Vec.length v);
        check Alcotest.(list int) "empty" [] (Engine.Vec.to_list v);
        Engine.Vec.push v 7;
        check Alcotest.int "reusable" 7 (Engine.Vec.get v 0));
  ]

let scheduler_tests =
  [
    tc "parallel_map preserves input order" (fun () ->
        let items = List.init 37 Fun.id in
        check
          Alcotest.(list int)
          "squares in order"
          (List.map (fun x -> x * x) items)
          (Engine.Scheduler.parallel_map ~jobs:4 (fun x -> x * x) items));
    tc "parallel_map re-raises worker exceptions" (fun () ->
        Alcotest.check_raises "first failure" (Failure "item-3") (fun () ->
            ignore
              (Engine.Scheduler.parallel_map ~jobs:3
                 (fun x ->
                   if x = 3 then failwith ("item-" ^ string_of_int x) else x)
                 (List.init 8 Fun.id))));
    tc "jobs:1 degrades to List.map" (fun () ->
        check
          Alcotest.(list int)
          "identity" [ 1; 2; 3 ]
          (Engine.Scheduler.parallel_map ~jobs:1 Fun.id [ 1; 2; 3 ]));
    tc "try_map keeps completed results next to failures" (fun () ->
        let out =
          Engine.Scheduler.try_map ~jobs:3
            (fun x -> if x = 3 then failwith "boom" else x * 2)
            (List.init 6 Fun.id)
        in
        check
          Alcotest.(list int)
          "siblings survive" [ 0; 2; 4; 8; 10 ]
          (List.filter_map
             (function Ok v -> Some v | Error _ -> None)
             out);
        match List.nth out 3 with
        | Error e ->
          check Alcotest.string "exception kept" "Failure(\"boom\")"
            (Printexc.to_string e)
        | Ok _ -> Alcotest.fail "failing item must surface its own exception");
  ]

let counter_value ctx name =
  Engine.Metrics.counter_value
    (Engine.Metrics.counter ctx.Engine.Ctx.metrics name)

let faults_tests =
  let cfg =
    {
      Engine.Faults.no_faults with
      Engine.Faults.llm_throttle = 0.5;
      io_failure = 0.5;
    }
  in
  let stream t site n = List.init n (fun _ -> Engine.Faults.fire t site) in
  [
    tc "per-site streams are independent of interleaving" (fun () ->
        let a = Engine.Faults.create ~seed:7 cfg in
        let b = Engine.Faults.create ~seed:7 cfg in
        (* draining io draws on [b] must not shift its llm stream *)
        let da = stream a Engine.Faults.Llm_throttle 50 in
        let db =
          List.init 50 (fun _ ->
              ignore (Engine.Faults.fire b Engine.Faults.Io_failure);
              Engine.Faults.fire b Engine.Faults.Llm_throttle)
        in
        check Alcotest.(list bool) "same llm decisions" da db;
        check Alcotest.bool "stream is non-trivial" true
          (List.mem true da && List.mem false da));
    tc "derive is stable per tag and consumes no parent state" (fun () ->
        let p = Engine.Faults.create ~seed:1 cfg in
        let c1 = Engine.Faults.derive p ~tag:5 in
        let c2 = Engine.Faults.derive p ~tag:5 in
        let s1 = stream c1 Engine.Faults.Llm_throttle 50 in
        check Alcotest.(list bool) "equal tags reproduce" s1
          (stream c2 Engine.Faults.Llm_throttle 50);
        check Alcotest.bool "distinct tags diverge" false
          (s1
          = stream (Engine.Faults.derive p ~tag:6) Engine.Faults.Llm_throttle 50);
        check
          Alcotest.(list bool)
          "parent stream untouched by derivation"
          (stream (Engine.Faults.create ~seed:1 cfg) Engine.Faults.Llm_throttle
             50)
          (stream p Engine.Faults.Llm_throttle 50));
    tc "zero-rate sites never fire" (fun () ->
        let t = Engine.Faults.create ~seed:3 Engine.Faults.no_faults in
        check Alcotest.bool "silent" false
          (List.mem true (stream t Engine.Faults.Worker_crash 100)));
    tc "fired faults bump the injected counter" (fun () ->
        let ctx = Engine.Ctx.create () in
        let t =
          Engine.Faults.create
            { Engine.Faults.no_faults with Engine.Faults.compile_hang = 1.0 }
        in
        for _ = 1 to 5 do
          ignore (Engine.Faults.fire ~ctx t Engine.Faults.Compile_hang)
        done;
        check Alcotest.int "counted" 5
          (counter_value ctx "faults.injected.compile_hang"));
    tc "spec parses, round-trips, and rejects junk" (fun () ->
        (match Engine.Faults.parse_spec "llm=0.25,hang=0.5,crash=0,io=1" with
        | Ok c ->
          check (Alcotest.float 1e-9) "llm" 0.25 c.Engine.Faults.llm_throttle;
          check (Alcotest.float 1e-9) "io" 1.0 c.Engine.Faults.io_failure;
          check Alcotest.bool "round-trip" true
            (Engine.Faults.parse_spec (Engine.Faults.spec_to_string c) = Ok c)
        | Error e -> Alcotest.failf "spec rejected: %s" e);
        check Alcotest.bool "off" true
          (Engine.Faults.parse_spec "off" = Ok Engine.Faults.no_faults);
        check Alcotest.string "off renders" "off"
          (Engine.Faults.spec_to_string Engine.Faults.no_faults);
        check Alcotest.bool "rate out of range" true
          (Result.is_error (Engine.Faults.parse_spec "llm=2"));
        check Alcotest.bool "unknown site" true
          (Result.is_error (Engine.Faults.parse_spec "bogus=0.1")));
    tc "shard-layer sites parse and round-trip canonically" (fun () ->
        (match
           Engine.Faults.parse_spec "frame=0.1,stall=0.05,oom=0.01,coord=0.02"
         with
        | Ok c ->
          check (Alcotest.float 1e-9) "frame" 0.1 c.Engine.Faults.frame_garble;
          check (Alcotest.float 1e-9) "stall" 0.05 c.Engine.Faults.frame_stall;
          check (Alcotest.float 1e-9) "oom" 0.01 c.Engine.Faults.worker_oom;
          check (Alcotest.float 1e-9) "coord" 0.02
            c.Engine.Faults.coordinator_crash;
          (* single-process sites stay silent *)
          check (Alcotest.float 1e-9) "llm untouched" 0.
            c.Engine.Faults.llm_throttle;
          check Alcotest.bool "round-trip" true
            (Engine.Faults.parse_spec (Engine.Faults.spec_to_string c) = Ok c)
        | Error e -> Alcotest.failf "shard spec rejected: %s" e);
        (* long names are accepted and canonicalize to the short keys *)
        check Alcotest.bool "long names accepted" true
          (Engine.Faults.parse_spec "frame_garble=0.1,worker_oom=0.01"
          = Engine.Faults.parse_spec "frame=0.1,oom=0.01");
        check Alcotest.int "eight sites" 8
          (List.length Engine.Faults.all_sites));
    tc "legacy four-site specs parse exactly as before" (fun () ->
        match Engine.Faults.parse_spec "llm=0.2,hang=0.01,crash=0.05,io=0.02"
        with
        | Ok c ->
          check (Alcotest.float 1e-9) "llm" 0.2 c.Engine.Faults.llm_throttle;
          check (Alcotest.float 1e-9) "hang" 0.01 c.Engine.Faults.compile_hang;
          check (Alcotest.float 1e-9) "crash" 0.05
            c.Engine.Faults.worker_crash;
          check (Alcotest.float 1e-9) "io" 0.02 c.Engine.Faults.io_failure;
          List.iter
            (fun site ->
              check (Alcotest.float 1e-9)
                (Engine.Faults.site_to_string site ^ " defaults to zero")
                0. (Engine.Faults.rate c site))
            Engine.Faults.
              [ Frame_garble; Frame_stall; Worker_oom; Coordinator_crash ];
          (* the canonical string — and with it every fingerprint baked
             into existing checkpoints — is unchanged by the new sites *)
          check Alcotest.string "canonical spec unchanged"
            "llm=0.2,hang=0.01,crash=0.05,io=0.02"
            (Engine.Faults.spec_to_string c)
        | Error e -> Alcotest.failf "legacy spec rejected: %s" e);
  ]

let retry_tests =
  let p = Engine.Retry.default_policy in
  [
    tc "backoff doubles from the base and respects the cap" (fun () ->
        (* jitter01 = 0.5 is the centre of the 1±jitter window: factor 1 *)
        let d n = Engine.Retry.delay_for p ~attempt:n ~jitter01:0.5 in
        check (Alcotest.float 1e-9) "first" 1. (d 1);
        check (Alcotest.float 1e-9) "second" 2. (d 2);
        check (Alcotest.float 1e-9) "third" 4. (d 3);
        check (Alcotest.float 1e-9) "capped" 30. (d 10);
        check (Alcotest.float 1e-9) "jitter floor" 0.5
          (Engine.Retry.delay_for p ~attempt:1 ~jitter01:0.));
    tc "recovery stops retrying and reports waits" (fun () ->
        let ctx = Engine.Ctx.create () in
        let out =
          Engine.Retry.run ~ctx ~name:"t" p
            ~retryable:(fun v -> v < 3)
            ~jitter:(fun () -> 0.5)
            (fun ~attempt -> attempt)
        in
        check Alcotest.int "value" 3 out.Engine.Retry.value;
        check Alcotest.int "attempts" 3 out.Engine.Retry.attempts;
        check (Alcotest.float 1e-9) "waited 1+2" 3. out.Engine.Retry.waited_s;
        check Alcotest.bool "recovered" true out.Engine.Retry.recovered;
        check Alcotest.int "t.attempts" 3 (counter_value ctx "t.attempts");
        check Alcotest.int "t.retried" 2 (counter_value ctx "t.retried");
        check Alcotest.int "t.recovered" 1 (counter_value ctx "t.recovered");
        check Alcotest.int "t.wait_ms" 3000 (counter_value ctx "t.wait_ms"));
    tc "exhaustion keeps the last value and is not a recovery" (fun () ->
        let ctx = Engine.Ctx.create () in
        let out =
          Engine.Retry.run ~ctx ~name:"t" p
            ~retryable:(fun _ -> true)
            ~jitter:(fun () -> 0.5)
            (fun ~attempt -> attempt)
        in
        check Alcotest.int "all attempts" 4 out.Engine.Retry.attempts;
        check (Alcotest.float 1e-9) "waited 1+2+4" 7. out.Engine.Retry.waited_s;
        check Alcotest.bool "not recovered" false out.Engine.Retry.recovered;
        check Alcotest.int "t.exhausted" 1 (counter_value ctx "t.exhausted"));
  ]

let checkpoint_tests =
  let temp_dir () = Filename.temp_dir "metamut-ckpt" "" in
  [
    tc "save/load round-trips a payload atomically" (fun () ->
        let path = Filename.concat (temp_dir ()) "a.ckpt" in
        (match Engine.Checkpoint.save ~path ~fingerprint:"fp" (42, "x") with
        | Ok () -> ()
        | Error e -> Alcotest.failf "save: %s" e);
        check Alcotest.bool "no stray temp file" false
          (Sys.file_exists (path ^ ".tmp"));
        match Engine.Checkpoint.load ~path ~fingerprint:"fp" with
        | Ok v -> check (Alcotest.pair Alcotest.int Alcotest.string) "value"
                    (42, "x") v
        | Error e -> Alcotest.failf "load: %s" e);
    tc "mismatched fingerprints refuse to load" (fun () ->
        let path = Filename.concat (temp_dir ()) "b.ckpt" in
        (match Engine.Checkpoint.save ~path ~fingerprint:"old" () with
        | Ok () -> ()
        | Error e -> Alcotest.failf "save: %s" e);
        check Alcotest.bool "refused" true
          (Result.is_error
             (Engine.Checkpoint.load ~path ~fingerprint:"new" : (unit, _) result)));
    tc "corrupt files are errors, not exceptions" (fun () ->
        let path = Filename.concat (temp_dir ()) "c.ckpt" in
        let oc = open_out_bin path in
        output_string oc "not a checkpoint";
        close_out oc;
        check Alcotest.bool "rejected" true
          (Result.is_error
             (Engine.Checkpoint.load ~path ~fingerprint:"fp" : (unit, _) result)));
    tc "injected i/o failures exhaust the retry budget" (fun () ->
        let ctx = Engine.Ctx.create () in
        let faults =
          Engine.Faults.create
            { Engine.Faults.no_faults with Engine.Faults.io_failure = 1.0 }
        in
        let path = Filename.concat (temp_dir ()) "d.ckpt" in
        check Alcotest.bool "save fails" true
          (Result.is_error
             (Engine.Checkpoint.save ~faults ~ctx ~path ~fingerprint:"fp" ()));
        check Alcotest.bool "nothing written" false (Sys.file_exists path);
        check Alcotest.int "failure counted" 1
          (counter_value ctx "checkpoint.save_failed"));
  ]

let supervision_tests =
  [
    tc "flaky items recover behind the per-item barrier" (fun () ->
        let tries = Array.init 5 (fun _ -> Atomic.make 0) in
        let ctx = Engine.Ctx.create () in
        let out =
          Engine.Scheduler.supervised_map ~jobs:4 ~attempts:2 ~ctx
            (fun i ->
              if Atomic.fetch_and_add tries.(i) 1 = 0 then failwith "flake"
              else i)
            (List.init 5 Fun.id)
        in
        check
          Alcotest.(list int)
          "all recovered" [ 0; 1; 2; 3; 4 ]
          (List.filter_map Result.to_option out);
        check Alcotest.int "retried" 5 (counter_value ctx "scheduler.retried");
        check Alcotest.int "ok" 5 (counter_value ctx "scheduler.ok"));
    tc "persistent failures surface without killing siblings" (fun () ->
        let out =
          Engine.Scheduler.supervised_map ~jobs:2 ~attempts:3
            (fun x -> if x = 1 then failwith "dead" else x * 10)
            [ 0; 1; 2 ]
        in
        (match List.nth out 1 with
        | Error { Engine.Scheduler.e_exn; e_attempts } ->
          check Alcotest.string "last exception" "Failure(\"dead\")"
            (Printexc.to_string e_exn);
          check Alcotest.int "attempts" 3 e_attempts
        | Ok _ -> Alcotest.fail "expected a 3-attempt failure");
        check
          Alcotest.(list int)
          "siblings fine" [ 0; 20 ]
          (List.filter_map Result.to_option out));
    tc "injected worker deaths requeue every orphaned item" (fun () ->
        let ctx = Engine.Ctx.create () in
        let faults =
          Engine.Faults.create ~seed:5
            { Engine.Faults.no_faults with Engine.Faults.worker_crash = 1.0 }
        in
        let out =
          Engine.Scheduler.supervised_map ~jobs:4 ~faults ~ctx
            (fun x -> x + 1)
            (List.init 9 Fun.id)
        in
        check
          Alcotest.(list int)
          "all items completed"
          (List.init 9 (fun i -> i + 1))
          (List.filter_map Result.to_option out);
        check Alcotest.int "all four domains died" 4
          (counter_value ctx "scheduler.worker_crashed");
        check Alcotest.int "everything requeued" 9
          (counter_value ctx "scheduler.requeued"));
    tc "healthy runs leave the registry untouched" (fun () ->
        let ctx = Engine.Ctx.create () in
        ignore
          (Engine.Scheduler.supervised_map ~jobs:4 ~ctx
             (fun x -> x)
             (List.init 8 Fun.id));
        check Alcotest.bool "metrics-silent" true
          (Engine.Metrics.snapshot ctx.Engine.Ctx.metrics = []));
  ]

(* The acceptance-criterion guarantee: a worker-parallel campaign must
   reproduce the sequential per-cell results exactly. *)
let determinism_tests =
  [
    tc "campaign jobs:1 and jobs:4 produce identical results" (fun () ->
        let base =
          {
            Fuzzing.Campaign.default_config with
            iterations = 12;
            seeds = 10;
            sample_every = 4;
            max_attempts = 4;
          }
        in
        let fingerprint jobs =
          let t =
            Fuzzing.Campaign.run
              ~cfg:{ base with Fuzzing.Campaign.jobs }
              ()
          in
          List.map
            (fun ((f, c), (r : Fuzzing.Fuzz_result.t)) ->
              ( (Fuzzing.Campaign.fuzzer_tag f, Fuzzing.Campaign.compiler_tag c),
                ( List.sort compare
                    (Simcomp.Coverage.branch_ids r.Fuzzing.Fuzz_result.coverage),
                  List.sort compare (Fuzzing.Fuzz_result.crash_keys r),
                  r.Fuzzing.Fuzz_result.coverage_trend,
                  ( r.Fuzzing.Fuzz_result.total_mutants,
                    r.Fuzzing.Fuzz_result.compilable_mutants ) ) ))
            t.Fuzzing.Campaign.results
        in
        let seq = fingerprint 1 and par = fingerprint 4 in
        check Alcotest.bool "identical coverage/crash/trend sets" true
          (seq = par));
    tc "parallel metrics merge equals the sequential registry" (fun () ->
        let cfg =
          {
            Fuzzing.Campaign.default_config with
            iterations = 8;
            seeds = 6;
            sample_every = 4;
            max_attempts = 4;
          }
        in
        let counters jobs =
          let engine = Engine.Ctx.create () in
          ignore
            (Fuzzing.Campaign.run
               ~cfg:{ cfg with Fuzzing.Campaign.jobs }
               ~fuzzers:[ Fuzzing.Campaign.MuCFuzz_u ]
               ~engine ());
          List.filter
            (function _, Engine.Metrics.Counter _ -> true | _ -> false)
            (Engine.Metrics.snapshot engine.Engine.Ctx.metrics)
        in
        check Alcotest.bool "same counters" true (counters 1 = counters 2));
    tc "faulted campaign is identical at any job count" (fun () ->
        (* the CI fault job raises these rates via METAMUT_FAULTS; the
           invariance must hold at whatever configuration is injected *)
        let config =
          match Engine.Faults.config_from_env () with
          | Some c -> c
          | None ->
            {
              Engine.Faults.no_faults with
              Engine.Faults.compile_hang = 0.05;
              worker_crash = 0.3;
            }
        in
        let base =
          {
            Fuzzing.Campaign.default_config with
            iterations = 10;
            seeds = 8;
            sample_every = 4;
            max_attempts = 4;
          }
        in
        let run jobs =
          let faults =
            Engine.Faults.create ~seed:(Engine.Faults.seed_from_env ()) config
          in
          (Fuzzing.Campaign.run
             ~cfg:{ base with Fuzzing.Campaign.jobs }
             ~faults ())
            .Fuzzing.Campaign.results
        in
        let a = run 1 and b = run 4 in
        check Alcotest.int "same cells" (List.length a) (List.length b);
        List.iter2
          (fun (c1, r1) (c2, r2) ->
            check Alcotest.bool "same cell" true (c1 = c2);
            check Alcotest.bool
              ("equal result for " ^ Fuzzing.Campaign.fuzzer_name (fst c1))
              true
              (Fuzzing.Fuzz_result.equal r1 r2))
          a b);
  ]

let mucfuzz_engine_tests =
  [
    tc "trend starts with the seed baseline sample" (fun () ->
        let seeds = Fuzzing.Seeds.corpus ~n:8 (Cparse.Rng.create 3) in
        let r =
          Fuzzing.Mucfuzz.run
            ~cfg:
              {
                (Fuzzing.Mucfuzz.default_config ()) with
                Fuzzing.Mucfuzz.max_attempts_per_iteration = 4;
                sample_every = 5;
              }
            ~rng:(Cparse.Rng.create 11) ~compiler:Simcomp.Compiler.Gcc ~seeds
            ~iterations:10 ~name:"t" ()
        in
        match r.Fuzzing.Fuzz_result.coverage_trend with
        | (0, covered) :: rest ->
          check Alcotest.bool "baseline covered" true (covered > 0);
          check Alcotest.bool "later samples follow" true
            (List.for_all (fun (i, _) -> i > 0) rest)
        | _ -> Alcotest.fail "trend must start at iteration 0");
    tc "per-mutator counters balance: attempts = outcomes" (fun () ->
        let seeds = Fuzzing.Seeds.corpus ~n:8 (Cparse.Rng.create 3) in
        let cfg =
          {
            (Fuzzing.Mucfuzz.default_config ()) with
            Fuzzing.Mucfuzz.max_attempts_per_iteration = 6;
          }
        in
        let fuzz ~engine ~iterations =
          ignore
            (Fuzzing.Mucfuzz.run ~cfg ~engine ~rng:(Cparse.Rng.create 5)
               ~compiler:Simcomp.Compiler.Gcc ~seeds ~iterations ~name:"t" ())
        in
        (* a zero-iteration run compiles only the (parseable) seeds *)
        let seed_engine = Engine.Ctx.create () in
        fuzz ~engine:seed_engine ~iterations:0;
        let seed_compiles =
          Engine.Metrics.counter_value
            (Engine.Metrics.counter seed_engine.Engine.Ctx.metrics
               "compile.total")
        in
        check Alcotest.bool "seeds compiled" true (seed_compiles > 0);
        let engine = Engine.Ctx.create () in
        fuzz ~engine ~iterations:15;
        let reg = engine.Engine.Ctx.metrics in
        let sum prefix =
          List.fold_left
            (fun acc (_, n) -> acc + n)
            0
            (Engine.Metrics.counters_with_prefix reg ~prefix)
        in
        let attempts = sum "mucfuzz.attempt." in
        check Alcotest.bool "some attempts" true (attempts > 0);
        check Alcotest.int "attempt = accept + reject + inapplicable"
          attempts
          (sum "mucfuzz.accept." + sum "mucfuzz.reject."
          + sum "mucfuzz.inapplicable.");
        (* compile events were emitted for every produced mutant + seed *)
        let compiles =
          Engine.Metrics.counter_value
            (Engine.Metrics.counter reg "compile.total")
        in
        check Alcotest.int "compiles = seeds + produced mutants" compiles
          (seed_compiles + sum "mucfuzz.accept." + sum "mucfuzz.reject."));
  ]

let () =
  Alcotest.run "engine"
    [
      ("metrics", metrics_tests);
      ("events", event_tests);
      ("spans", span_tests);
      ("vec", vec_tests);
      ("scheduler", scheduler_tests);
      ("faults", faults_tests);
      ("retry", retry_tests);
      ("checkpoint", checkpoint_tests);
      ("supervision", supervision_tests);
      ("determinism", determinism_tests);
      ("mucfuzz-engine", mucfuzz_engine_tests);
    ]
