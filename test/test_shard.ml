(* Tests for multi-process sharding: the frame protocol (round-trips,
   garbled/short/oversized frames rejected without hanging, timeouts),
   the worker pool (shards:1 ≡ shards:K, death-mid-lease requeue,
   deterministic failures), the sharded campaign coordinator
   (shards:1 ≡ shards:4 byte-identical report, opt-matrix determinism,
   checkpoint compatibility with Campaign.run), and Status TTY
   ownership. *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let frame_eq (a : Engine.Shard.frame) (b : Engine.Shard.frame) = a = b

let frame_testable =
  Alcotest.testable
    (fun ppf (f : Engine.Shard.frame) ->
      Fmt.pf ppf "%s"
        (match f with
        | Hello { shard } -> Fmt.str "Hello %d" shard
        | Request -> "Request"
        | Lease { seq; attempt; body } ->
          Fmt.str "Lease %d/%d %S" seq attempt body
        | Result { seq; body } -> Fmt.str "Result %d %S" seq body
        | Heartbeat { execs; covered; crashes } ->
          Fmt.str "Heartbeat %d %d %d" execs covered crashes
        | Shutdown -> "Shutdown"))
    frame_eq

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      try Unix.close b with _ -> ())
    (fun () -> f (Engine.Shard.of_fd a) (Engine.Shard.of_fd b))

let recv_ok ?timeout_s c =
  match Engine.Shard.recv ?timeout_s c with
  | Ok f -> f
  | Error e -> Alcotest.fail ("recv: " ^ Engine.Shard.recv_error_to_string e)

(* ------------------------------------------------------------------ *)
(* Frame protocol                                                      *)
(* ------------------------------------------------------------------ *)

let protocol_tests =
  [
    tc "every frame round-trips over a socketpair" (fun () ->
        with_socketpair (fun a b ->
            let frames : Engine.Shard.frame list =
              [
                Hello { shard = 3 };
                Request;
                Lease { seq = 7; attempt = 1; body = "the lease body" };
                Result { seq = 7; body = String.make 5000 'x' };
                Heartbeat { execs = 123456; covered = 42; crashes = 7 };
                Lease { seq = 0; attempt = 0; body = "" };
                Shutdown;
              ]
            in
            List.iter (fun f -> Engine.Shard.send a f) frames;
            List.iter
              (fun f ->
                check frame_testable "frame" f (recv_ok ~timeout_s:5. b))
              frames));
    tc "garbled magic is rejected without hanging" (fun () ->
        with_socketpair (fun a b ->
            let junk = Bytes.of_string "NOTaframe-at-all" in
            ignore (Unix.write (Engine.Shard.fd a) junk 0 (Bytes.length junk));
            match Engine.Shard.recv ~timeout_s:2. b with
            | Error (Garbled _) -> ()
            | Ok _ | Error _ -> Alcotest.fail "expected Garbled"));
    tc "cross-version magic is garbled, not misparsed" (fun () ->
        with_socketpair (fun a b ->
            (* same "MSF" stem, different version byte *)
            let h = Bytes.of_string "MSF\xff\x01\x00\x00\x00\x00" in
            ignore (Unix.write (Engine.Shard.fd a) h 0 (Bytes.length h));
            match Engine.Shard.recv ~timeout_s:2. b with
            | Error (Garbled msg) ->
              check Alcotest.bool "mentions protocol"
                true
                (Astring.String.is_infix ~affix:"protocol" msg
                 || String.length msg > 0)
            | Ok _ | Error _ -> Alcotest.fail "expected Garbled"));
    tc "oversized length is garbled" (fun () ->
        with_socketpair (fun a b ->
            let h = Bytes.create 9 in
            Bytes.blit_string Engine.Shard.magic 0 h 0 4;
            Bytes.set_uint8 h 4 1 (* Request *);
            Bytes.set_int32_be h 5 0x7fffffffl;
            ignore (Unix.write (Engine.Shard.fd a) h 0 9);
            match Engine.Shard.recv ~timeout_s:2. b with
            | Error (Garbled _) -> ()
            | Ok _ | Error _ -> Alcotest.fail "expected Garbled"));
    tc "short frame (EOF mid-payload) is garbled, not a hang" (fun () ->
        with_socketpair (fun a b ->
            let h = Bytes.create 11 in
            Bytes.blit_string Engine.Shard.magic 0 h 0 4;
            Bytes.set_uint8 h 4 3 (* Result *);
            Bytes.set_int32_be h 5 100l (* promises 100 payload bytes *);
            (* ...delivers 2 *)
            ignore (Unix.write (Engine.Shard.fd a) h 0 11);
            Unix.close (Engine.Shard.fd a);
            match Engine.Shard.recv ~timeout_s:2. b with
            | Error (Garbled _) -> ()
            | Ok _ | Error _ -> Alcotest.fail "expected Garbled"));
    tc "stalled mid-frame peer times out" (fun () ->
        with_socketpair (fun a b ->
            let h = Bytes.create 9 in
            Bytes.blit_string Engine.Shard.magic 0 h 0 4;
            Bytes.set_uint8 h 4 3;
            Bytes.set_int32_be h 5 100l;
            ignore (Unix.write (Engine.Shard.fd a) h 0 9);
            (* peer stays connected but never sends the payload *)
            let t0 = Unix.gettimeofday () in
            (match Engine.Shard.recv ~timeout_s:0.3 b with
            | Error Timeout -> ()
            | Ok _ | Error _ -> Alcotest.fail "expected Timeout");
            check Alcotest.bool "returned promptly" true
              (Unix.gettimeofday () -. t0 < 2.)));
    tc "EOF at a frame boundary is an orderly Closed" (fun () ->
        with_socketpair (fun a b ->
            Unix.close (Engine.Shard.fd a);
            match Engine.Shard.recv ~timeout_s:2. b with
            | Error Closed -> ()
            | Ok _ | Error _ -> Alcotest.fail "expected Closed"));
    tc "encode/decode round-trips; truncated payload is an Error" (fun () ->
        let v = (42, "hello", [ 1.5; 2.5 ]) in
        let s = Engine.Shard.encode v in
        (match Engine.Shard.decode s with
        | Ok v' ->
          check
            Alcotest.(triple int string (list (float 1e-9)))
            "round-trip" v v'
        | Error msg -> Alcotest.fail msg);
        (match Engine.Shard.decode (String.sub s 0 (String.length s - 1)) with
        | Error _ -> ()
        | Ok (_ : int * string * float list) ->
          Alcotest.fail "truncated payload decoded");
        match Engine.Shard.decode "xx" with
        | Error _ -> ()
        | Ok (_ : int) -> Alcotest.fail "2-byte string decoded");
  ]

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

(* a pure work function: the pooled result must match the inline one *)
let upper_f ~heartbeat ~seq ~attempt:_ body =
  heartbeat ~execs:(seq + 1) ~covered:0 ~crashes:0;
  String.uppercase_ascii body ^ Fmt.str "#%d" seq

let verdict_testable =
  Alcotest.testable
    (fun ppf (v : Engine.Shard.verdict) ->
      match v with
      | Done b -> Fmt.pf ppf "Done %S" b
      | Failed m -> Fmt.pf ppf "Failed %S" m
      | Quarantined { q_reason; q_attempts } ->
        Fmt.pf ppf "Quarantined{%S after %d}" q_reason q_attempts)
    (fun (a : Engine.Shard.verdict) b -> a = b)

let verdicts_testable = Alcotest.array verdict_testable

let faults_of_spec ?(seed = 11) spec =
  match Engine.Faults.parse_spec spec with
  | Ok cfg -> Engine.Faults.create ~seed cfg
  | Error msg -> Alcotest.fail msg

let pool_tests =
  [
    tc "run_pool shards:1 ≡ shards:3 (fork)" (fun () ->
        let leases = Array.init 7 (fun i -> Fmt.str "lease-%d" i) in
        let seq_r, seq_stats =
          Engine.Shard.run_pool ~shards:1 ~f:upper_f leases
        in
        let par_r, _ =
          Engine.Shard.run_pool ~shards:3 ~backend:Engine.Shard.Fork
            ~f:upper_f leases
        in
        check verdicts_testable "results equal" seq_r par_r;
        check Alcotest.int "no deaths inline" 0 seq_stats.Engine.Shard.st_died;
        Array.iteri
          (fun i r ->
            check verdict_testable "computed"
              (Engine.Shard.Done (Fmt.str "LEASE-%d#%d" i i))
              r)
          seq_r);
    tc "heartbeats reach the coordinator" (fun () ->
        let beats = ref 0 in
        let leases = Array.init 3 (fun i -> string_of_int i) in
        let _, _ =
          Engine.Shard.run_pool ~shards:2 ~backend:Engine.Shard.Fork
            ~on_heartbeat:(fun ~shard:_ ~execs:_ ~covered:_ ~crashes:_ ->
              incr beats)
            ~f:upper_f leases
        in
        check Alcotest.bool "got heartbeats" true (!beats >= 1));
    tc "worker death mid-lease: lease requeued, pool recovers" (fun () ->
        (* kill once: the lease carries its own poison, first attempt only *)
        let f ~heartbeat:_ ~seq:_ ~attempt body =
          if body = "die" && attempt = 0 && Engine.Shard.in_worker () then
            Unix._exit 42;
          "ok:" ^ body
        in
        let ctx = Engine.Ctx.create () in
        let leases = [| "a"; "die"; "b"; "c" |] in
        let r, stats =
          Engine.Shard.run_pool ~shards:2 ~backend:Engine.Shard.Fork ~ctx ~f
            leases
        in
        check verdicts_testable "all recovered"
          [|
            Engine.Shard.Done "ok:a"; Done "ok:die"; Done "ok:b"; Done "ok:c";
          |]
          r;
        check Alcotest.bool "death counted" true
          (stats.Engine.Shard.st_died >= 1);
        check Alcotest.bool "requeue counted" true
          (stats.Engine.Shard.st_requeued >= 1);
        (* interventions land in the metrics registry *)
        check Alcotest.bool "shard.worker_died bumped" true
          (Engine.Metrics.counter_value
             (Engine.Metrics.counter ctx.Engine.Ctx.metrics
                "shard.worker_died")
           >= 1));
    tc "deterministic failure burns attempts then lands in Error" (fun () ->
        let f ~heartbeat:_ ~seq:_ ~attempt:_ body =
          if body = "bad" then failwith "always broken";
          "ok:" ^ body
        in
        let r, stats =
          Engine.Shard.run_pool ~shards:2 ~backend:Engine.Shard.Fork
            ~limits:{ Engine.Shard.default_limits with max_attempts = 2 }
            ~f [| "x"; "bad"; "y" |]
        in
        (match r.(1) with
        | Engine.Shard.Failed msg ->
          check Alcotest.bool "carries the exception" true
            (Astring.String.is_infix ~affix:"always broken" msg)
        | Done _ | Quarantined _ ->
          Alcotest.fail "deterministic failure did not land in Failed");
        check verdict_testable "siblings unaffected"
          (Engine.Shard.Done "ok:x") r.(0);
        check verdict_testable "siblings unaffected"
          (Engine.Shard.Done "ok:y") r.(2);
        (* healthy-worker failures are not deaths *)
        check Alcotest.int "no deaths" 0 stats.Engine.Shard.st_died);
  ]

(* ------------------------------------------------------------------ *)
(* Shard-layer chaos and the resource governor                         *)
(* ------------------------------------------------------------------ *)

(* Chaos verdicts are shard-count-invariant: every fault decision comes
   off a stream derived per (lease, attempt) from the root seed, so the
   inline degenerate mode and a real worker pool agree on which attempt
   of which lease gets hit — and therefore on every final verdict. *)
let chaos_tests =
  let quick_limits =
    { Engine.Shard.default_limits with hang_timeout_s = 1.0 }
  in
  let run ~shards ?limits ?faults ?ctx ?journal leases =
    Engine.Shard.run_pool ~shards ~backend:Engine.Shard.Fork
      ~limits:(Option.value ~default:quick_limits limits)
      ?faults ?ctx ?journal ~f:upper_f leases
  in
  [
    tc "injected oom/garble/stall: shards:1 ≡ shards:3 verdicts" (fun () ->
        let leases = Array.init 8 (fun i -> Fmt.str "lease-%d" i) in
        let spec = "oom=0.35,frame=0.25,stall=0.2" in
        let seq_r, _ = run ~shards:1 ~faults:(faults_of_spec spec) leases in
        let ctx = Engine.Ctx.create () in
        let par_r, stats =
          run ~shards:3 ~faults:(faults_of_spec spec) ~ctx leases
        in
        check verdicts_testable "verdicts equal under chaos" seq_r par_r;
        (* at these rates the stream provably hits something *)
        check Alcotest.bool "chaos actually fired" true
          (stats.Engine.Shard.st_died >= 1);
        Array.iter
          (function
            | Engine.Shard.Done _ | Quarantined _ -> ()
            | Failed msg -> Alcotest.fail ("chaos leaked a Failed: " ^ msg))
          par_r;
        (* every injected kill was recovered or quarantined, and the
           registry shows only intervention counters *)
        let counter name =
          Engine.Metrics.counter_value
            (Engine.Metrics.counter ctx.Engine.Ctx.metrics name)
        in
        check Alcotest.bool "shard.worker_died bumped" true
          (counter "shard.worker_died" >= 1);
        check Alcotest.int "requeues match stats"
          stats.Engine.Shard.st_requeued
          (counter "shard.requeued"));
    tc "worker-oom at rate 1.0 trips the circuit breaker" (fun () ->
        let ctx = Engine.Ctx.create () in
        let r, stats =
          run ~shards:2 ~faults:(faults_of_spec "oom=1.0") ~ctx
            [| "a"; "b" |]
        in
        Array.iter
          (function
            | Engine.Shard.Quarantined { q_reason; q_attempts } ->
              check Alcotest.bool "reason names the oom category" true
                (Astring.String.is_infix ~affix:"worker-oom" q_reason);
              check Alcotest.bool "attempts were burned" true (q_attempts >= 1)
            | Done _ | Failed _ ->
              Alcotest.fail "permanent oom must quarantine")
          r;
        check Alcotest.int "every lease quarantined" 2
          stats.Engine.Shard.st_quarantined;
        check Alcotest.bool "oom kills counted" true
          (stats.Engine.Shard.st_oom >= 1);
        check Alcotest.bool "breaker counter bumped" true
          (Engine.Metrics.counter_value
             (Engine.Metrics.counter ctx.Engine.Ctx.metrics
                "shard.breaker_tripped")
           >= 1));
    tc "coordinator_crash at rate 1.0: lossless, restarts counted"
      (fun () ->
        let leases = Array.init 5 (fun i -> Fmt.str "l%d" i) in
        let seq_r, _ = run ~shards:1 leases in
        let par_r, stats =
          run ~shards:2 ~faults:(faults_of_spec "coord=1.0") leases
        in
        check verdicts_testable "no committed result lost" seq_r par_r;
        check Alcotest.bool "the coordinator crash-restarted" true
          (stats.Engine.Shard.st_crash_restarts >= 1));
    tc "journal fires once per Done lease, before the join" (fun () ->
        let seen = Hashtbl.create 8 in
        let leases = Array.init 6 (fun i -> Fmt.str "j%d" i) in
        let r, _ =
          run ~shards:2
            ~journal:(fun ~seq body -> Hashtbl.replace seen seq body)
            leases
        in
        Array.iteri
          (fun seq v ->
            match v with
            | Engine.Shard.Done body ->
              check Alcotest.(option string) "journaled body" (Some body)
                (Hashtbl.find_opt seen seq)
            | Failed _ | Quarantined _ -> Alcotest.fail "healthy run failed")
          r);
    tc "lease deadline: a stuck lease is killed and quarantined" (fun () ->
        let f ~heartbeat:_ ~seq:_ ~attempt:_ body =
          if body = "stuck" && Engine.Shard.in_worker () then
            Unix.sleepf 30.;
          "ok:" ^ body
        in
        let ctx = Engine.Ctx.create () in
        let r, stats =
          Engine.Shard.run_pool ~shards:2 ~backend:Engine.Shard.Fork
            ~limits:
              {
                Engine.Shard.default_limits with
                hang_timeout_s = 30.;
                lease_deadline_s = 0.4;
                max_attempts = 2;
              }
            ~ctx ~f [| "a"; "stuck"; "b" |]
        in
        (match r.(1) with
        | Engine.Shard.Quarantined { q_reason; q_attempts = 2 } ->
          check Alcotest.string "deadline category" "deadline" q_reason
        | v ->
          Alcotest.failf "expected deadline quarantine, got %a"
            (Alcotest.pp verdict_testable) v);
        check verdict_testable "siblings unaffected"
          (Engine.Shard.Done "ok:a") r.(0);
        check Alcotest.bool "deadline kills counted" true
          (stats.Engine.Shard.st_deadline >= 1);
        check Alcotest.bool "shard.deadline_killed bumped" true
          (Engine.Metrics.counter_value
             (Engine.Metrics.counter ctx.Engine.Ctx.metrics
                "shard.deadline_killed")
           >= 1));
    tc "allocation budget: a hog lease is OOM-killed by the governor"
      (fun () ->
        let f ~heartbeat:_ ~seq:_ ~attempt:_ body =
          if body = "hog" && Engine.Shard.in_worker () then
            for _ = 1 to 8 do
              ignore (Sys.opaque_identity (Bytes.create 8_000_000));
              Gc.full_major ()
            done;
          "ok:" ^ body
        in
        let r, stats =
          Engine.Shard.run_pool ~shards:2 ~backend:Engine.Shard.Fork
            ~limits:
              {
                Engine.Shard.default_limits with
                alloc_budget_words = 1_000_000.;
              }
            ~f [| "a"; "hog"; "b" |]
        in
        (match r.(1) with
        | Engine.Shard.Quarantined { q_reason; _ } ->
          check Alcotest.bool "classified as worker-oom" true
            (Astring.String.is_infix ~affix:"worker-oom" q_reason)
        | v ->
          Alcotest.failf "expected oom quarantine, got %a"
            (Alcotest.pp verdict_testable) v);
        check verdict_testable "siblings unaffected"
          (Engine.Shard.Done "ok:b") r.(2);
        check Alcotest.bool "governor kills counted" true
          (stats.Engine.Shard.st_oom >= 1));
    tc "no spawnable worker: inline fallback, chaos verdicts unchanged"
      (fun () ->
        let leases = Array.init 6 (fun i -> Fmt.str "f%d" i) in
        let spec = "io=0.3,oom=0.4" in
        let seq_r, _ = run ~shards:1 ~faults:(faults_of_spec spec) leases in
        let broken = Engine.Shard.Spawn (fun _ -> failwith "no exec") in
        let fb_r, stats =
          Engine.Shard.run_pool ~shards:3 ~backend:broken ~limits:quick_limits
            ~faults:(faults_of_spec spec) ~f:upper_f leases
        in
        check verdicts_testable "fallback ≡ inline" seq_r fb_r;
        check Alcotest.bool "attempts ran inline" true
          (stats.Engine.Shard.st_inline >= Array.length leases));
  ]

(* ------------------------------------------------------------------ *)
(* Sharded campaign coordinator                                        *)
(* ------------------------------------------------------------------ *)

let small_cfg =
  {
    Fuzzing.Campaign.default_config with
    iterations = 60;
    seeds = 12;
    sample_every = 15;
    jobs = 1;
  }

let some_fuzzers = Fuzzing.Campaign.[ MuCFuzz_s; AFLpp ]

let result_testable =
  Alcotest.testable
    (fun ppf (r : Fuzzing.Fuzz_result.t) ->
      Fmt.pf ppf "%s: %d mutants, %d covered, %d crashes" r.fuzzer_name
        r.total_mutants
        (Simcomp.Coverage.covered r.coverage)
        (Fuzzing.Fuzz_result.unique_crashes r))
    Fuzzing.Fuzz_result.equal

let run_coordinator ?opt_levels ?faults ?limits ?checkpoint ?resume ~shards
    () =
  Fuzzing.Coordinator.run ~cfg:small_cfg ~fuzzers:some_fuzzers ?opt_levels
    ?faults ?limits ?checkpoint ?resume ~shards ~backend:Engine.Shard.Fork ()

let coordinator_tests =
  [
    tc "shards:1 ≡ shards:4: results, coverage, crashes, report" (fun () ->
        let t1 = run_coordinator ~shards:1 () in
        let t4 = run_coordinator ~shards:4 () in
        check Alcotest.int "unit count"
          (List.length t1.Fuzzing.Coordinator.results)
          (List.length t4.Fuzzing.Coordinator.results);
        List.iter2
          (fun (u1, r1) (u4, r4) ->
            check Alcotest.string "unit order"
              (Fuzzing.Coordinator.unit_name u1)
              (Fuzzing.Coordinator.unit_name u4);
            check result_testable
              (Fuzzing.Coordinator.unit_name u1)
              r1 r4)
          t1.Fuzzing.Coordinator.results t4.Fuzzing.Coordinator.results;
        check Alcotest.(list string) "crash sets"
          (Fuzzing.Coordinator.all_crashes t1)
          (Fuzzing.Coordinator.all_crashes t4);
        check Alcotest.bool "aggregate coverage" true
          (Simcomp.Coverage.equal
             (Fuzzing.Coordinator.aggregate_coverage t1)
             (Fuzzing.Coordinator.aggregate_coverage t4));
        (* the campaign report (no engine: the span table is wall-clock)
           is byte-identical *)
        check Alcotest.string "campaign-report.md"
          (Fuzzing.Coordinator.report t1)
          (Fuzzing.Coordinator.report t4);
        check Alcotest.int "no failures" 0
          (List.length t4.Fuzzing.Coordinator.failures);
        check Alcotest.int "no interventions" 0
          t4.Fuzzing.Coordinator.shard_stats.Engine.Shard.st_died);
    tc "worker death mid-lease: same final result, requeue counted"
      (fun () ->
        let baseline = run_coordinator ~shards:1 () in
        Unix.putenv "METAMUT_SHARD_KILL" "uCFuzz.s-GCC";
        let killed =
          Fun.protect
            ~finally:(fun () -> Unix.putenv "METAMUT_SHARD_KILL" "")
            (fun () -> run_coordinator ~shards:2 ())
        in
        check Alcotest.bool "a worker died" true
          (killed.Fuzzing.Coordinator.shard_stats.Engine.Shard.st_died >= 1);
        check Alcotest.bool "the lease was requeued" true
          (killed.Fuzzing.Coordinator.shard_stats.Engine.Shard.st_requeued
           >= 1);
        check Alcotest.string "report identical after recovery"
          (Fuzzing.Coordinator.report baseline)
          (Fuzzing.Coordinator.report killed));
    tc "opt-matrix: deterministic across shard counts, levels differ"
      (fun () ->
        let t1 = run_coordinator ~opt_levels:[ 0; 2 ] ~shards:1 () in
        let t2 = run_coordinator ~opt_levels:[ 0; 2 ] ~shards:2 () in
        check Alcotest.string "opt-matrix report"
          (Fuzzing.Coordinator.report t1)
          (Fuzzing.Coordinator.report t2);
        check Alcotest.int "levels x cells" 8
          (List.length t1.Fuzzing.Coordinator.results);
        (* -O0 and -O2 run different pass pipelines: coverage differs *)
        let cov u =
          List.assoc_opt u t1.Fuzzing.Coordinator.results
          |> Option.map (fun (r : Fuzzing.Fuzz_result.t) ->
                 Simcomp.Coverage.covered r.coverage)
        in
        let u l =
          {
            Fuzzing.Coordinator.u_fuzzer = Fuzzing.Campaign.MuCFuzz_s;
            u_compiler = Simcomp.Compiler.Gcc;
            u_opt = Some l;
          }
        in
        check Alcotest.bool "distinct coverage across -O levels" true
          (cov (u 0) <> cov (u 2)));
    tc "checkpoint files are Campaign-compatible: sequential save, \
        sharded resume" (fun () ->
        let dir =
          Filename.concat (Filename.get_temp_dir_name ())
            (Fmt.str "metamut-shard-ckpt-%d" (Unix.getpid ()))
        in
        let seq =
          Fuzzing.Campaign.run ~cfg:small_cfg ~fuzzers:some_fuzzers
            ~checkpoint:dir ()
        in
        (* every cell completed sequentially; the sharded coordinator
           must restore all of them from Campaign.run's own files *)
        let resumed =
          run_coordinator ~shards:2 ~checkpoint:dir ~resume:true ()
        in
        check Alcotest.int "all units restored"
          (List.length seq.Fuzzing.Campaign.results)
          resumed.Fuzzing.Coordinator.resumed_units;
        List.iter2
          (fun (_, r_seq) (_, r_sh) ->
            check result_testable "restored result" r_seq r_sh)
          seq.Fuzzing.Campaign.results resumed.Fuzzing.Coordinator.results;
        (* and a fresh sharded run writes files a sequential campaign
           can restore *)
        let dir2 = dir ^ "-b" in
        let sh = run_coordinator ~shards:2 ~checkpoint:dir2 () in
        let seq2 =
          Fuzzing.Campaign.run ~cfg:small_cfg ~fuzzers:some_fuzzers
            ~checkpoint:dir2 ~resume:true ()
        in
        check Alcotest.int "sequential restored sharded files"
          (List.length sh.Fuzzing.Coordinator.results)
          seq2.Fuzzing.Campaign.resumed_cells;
        List.iter
          (fun d ->
            Array.iter
              (fun f -> try Sys.remove (Filename.concat d f) with _ -> ())
              (try Sys.readdir d with _ -> [||]);
            try Unix.rmdir d with _ -> ())
          [ dir; dir2 ]);
    tc "chaos-armed campaign: shards:1 ≡ shards:2, report identical"
      (fun () ->
        let faults () = faults_of_spec ~seed:7 "frame=0.3,oom=0.3,coord=0.5" in
        let t1 = run_coordinator ~shards:1 ~faults:(faults ()) () in
        let t2 = run_coordinator ~shards:2 ~faults:(faults ()) () in
        check Alcotest.string "report identical under chaos"
          (Fuzzing.Coordinator.report t1)
          (Fuzzing.Coordinator.report t2);
        check Alcotest.int "unit count"
          (List.length t1.Fuzzing.Coordinator.results
          + List.length t1.Fuzzing.Coordinator.quarantined)
          (List.length t2.Fuzzing.Coordinator.results
          + List.length t2.Fuzzing.Coordinator.quarantined);
        check Alcotest.int "nothing failed outright" 0
          (List.length t2.Fuzzing.Coordinator.failures));
    tc "permanent oom: every unit quarantined, report grows the table"
      (fun () ->
        let t =
          run_coordinator ~shards:2 ~faults:(faults_of_spec "oom=1.0") ()
        in
        check Alcotest.int "no results" 0
          (List.length t.Fuzzing.Coordinator.results);
        check Alcotest.int "all units quarantined" 4
          (List.length t.Fuzzing.Coordinator.quarantined);
        List.iter
          (fun (q : Fuzzing.Coordinator.quarantined_unit) ->
            check Alcotest.bool "reason names worker-oom" true
              (Astring.String.is_infix ~affix:"worker-oom" q.qu_reason);
            check Alcotest.bool "fingerprint recorded" true
              (String.length q.qu_fingerprint > 0))
          t.Fuzzing.Coordinator.quarantined;
        let report = Fuzzing.Coordinator.report t in
        check Alcotest.bool "quarantine table rendered" true
          (Astring.String.is_infix ~affix:"Quarantined units" report);
        check Alcotest.bool "unit named in the table" true
          (Astring.String.is_infix ~affix:"uCFuzz.s-GCC" report));
    tc "coordinator SIGKILL mid-campaign + resume ≡ uninterrupted \
        (opt-matrix)" (fun () ->
        let dir =
          Filename.concat (Filename.get_temp_dir_name ())
            (Fmt.str "metamut-shard-crash-%d" (Unix.getpid ()))
        in
        let baseline = run_coordinator ~opt_levels:[ 0; 2 ] ~shards:1 () in
        (* a real coordinator crash: fork one, SIGKILL it mid-run *)
        flush stdout;
        flush stderr;
        (match Unix.fork () with
        | 0 ->
          (try
             ignore
               (run_coordinator ~opt_levels:[ 0; 2 ] ~shards:2
                  ~checkpoint:dir ())
           with _ -> ());
          Unix._exit 0
        | pid ->
          Unix.sleepf 0.5;
          (try Unix.kill pid Sys.sigkill with _ -> ());
          ignore (Unix.waitpid [] pid));
        let resumed =
          run_coordinator ~opt_levels:[ 0; 2 ] ~shards:2 ~checkpoint:dir
            ~resume:true ()
        in
        check Alcotest.string "resumed report ≡ uninterrupted"
          (Fuzzing.Coordinator.report baseline)
          (Fuzzing.Coordinator.report resumed);
        check Alcotest.(list string) "crash sets survive the crash"
          (Fuzzing.Coordinator.all_crashes baseline)
          (Fuzzing.Coordinator.all_crashes resumed);
        check Alcotest.bool "aggregate coverage survives the crash" true
          (Simcomp.Coverage.equal
             (Fuzzing.Coordinator.aggregate_coverage baseline)
             (Fuzzing.Coordinator.aggregate_coverage resumed));
        Array.iter
          (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
          (try Sys.readdir dir with _ -> [||]);
        (try Unix.rmdir dir with _ -> ()));
  ]

(* ------------------------------------------------------------------ *)
(* Status TTY ownership                                                *)
(* ------------------------------------------------------------------ *)

let status_tests =
  [
    tc "non-owners render nothing; the owner draws the aggregate line"
      (fun () ->
        Fun.protect
          ~finally:(fun () -> Engine.Status.set_tty_owner true)
          (fun () ->
            let buf = Buffer.create 64 in
            let ctx = Engine.Ctx.create () in
            let st =
              Engine.Status.attach ~out:(Buffer.add_string buf)
                ~interval_ns:0L ~label:"shardtest" ctx
            in
            Engine.Status.set_tty_owner false;
            Engine.Status.update st ~execs:100 ~covered:5 ~crashes:1 ();
            Engine.Status.finish st;
            check Alcotest.string "worker drew nothing" "" (Buffer.contents buf);
            (* state still folds while silent: the line is current the
               moment ownership returns *)
            check Alcotest.bool "line carries the numbers" true
              (Astring.String.is_infix ~affix:"100 execs"
                 (Engine.Status.line st));
            Engine.Status.set_tty_owner true;
            let st2 =
              Engine.Status.attach ~out:(Buffer.add_string buf)
                ~interval_ns:0L ~label:"coord" ctx
            in
            Engine.Status.update st2 ~execs:7 ~covered:3 ~crashes:0 ();
            check Alcotest.bool "owner drew the aggregated line" true
              (Astring.String.is_infix ~affix:"7 execs"
                 (Buffer.contents buf));
            Engine.Status.finish st2));
  ]

let () =
  Alcotest.run "shard"
    [
      ("protocol", protocol_tests);
      ("pool", pool_tests);
      ("chaos", chaos_tests);
      ("coordinator", coordinator_tests);
      ("status", status_tests);
    ]
