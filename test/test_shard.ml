(* Tests for multi-process sharding: the frame protocol (round-trips,
   garbled/short/oversized frames rejected without hanging, timeouts),
   the worker pool (shards:1 ≡ shards:K, death-mid-lease requeue,
   deterministic failures), the sharded campaign coordinator
   (shards:1 ≡ shards:4 byte-identical report, opt-matrix determinism,
   checkpoint compatibility with Campaign.run), and Status TTY
   ownership. *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let frame_eq (a : Engine.Shard.frame) (b : Engine.Shard.frame) = a = b

let frame_testable =
  Alcotest.testable
    (fun ppf (f : Engine.Shard.frame) ->
      Fmt.pf ppf "%s"
        (match f with
        | Hello { shard } -> Fmt.str "Hello %d" shard
        | Request -> "Request"
        | Lease { seq; attempt; body } ->
          Fmt.str "Lease %d/%d %S" seq attempt body
        | Result { seq; body } -> Fmt.str "Result %d %S" seq body
        | Heartbeat { execs; covered; crashes } ->
          Fmt.str "Heartbeat %d %d %d" execs covered crashes
        | Shutdown -> "Shutdown"))
    frame_eq

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      try Unix.close b with _ -> ())
    (fun () -> f (Engine.Shard.of_fd a) (Engine.Shard.of_fd b))

let recv_ok ?timeout_s c =
  match Engine.Shard.recv ?timeout_s c with
  | Ok f -> f
  | Error e -> Alcotest.fail ("recv: " ^ Engine.Shard.recv_error_to_string e)

(* ------------------------------------------------------------------ *)
(* Frame protocol                                                      *)
(* ------------------------------------------------------------------ *)

let protocol_tests =
  [
    tc "every frame round-trips over a socketpair" (fun () ->
        with_socketpair (fun a b ->
            let frames : Engine.Shard.frame list =
              [
                Hello { shard = 3 };
                Request;
                Lease { seq = 7; attempt = 1; body = "the lease body" };
                Result { seq = 7; body = String.make 5000 'x' };
                Heartbeat { execs = 123456; covered = 42; crashes = 7 };
                Lease { seq = 0; attempt = 0; body = "" };
                Shutdown;
              ]
            in
            List.iter (fun f -> Engine.Shard.send a f) frames;
            List.iter
              (fun f ->
                check frame_testable "frame" f (recv_ok ~timeout_s:5. b))
              frames));
    tc "garbled magic is rejected without hanging" (fun () ->
        with_socketpair (fun a b ->
            let junk = Bytes.of_string "NOTaframe-at-all" in
            ignore (Unix.write (Engine.Shard.fd a) junk 0 (Bytes.length junk));
            match Engine.Shard.recv ~timeout_s:2. b with
            | Error (Garbled _) -> ()
            | Ok _ | Error _ -> Alcotest.fail "expected Garbled"));
    tc "cross-version magic is garbled, not misparsed" (fun () ->
        with_socketpair (fun a b ->
            (* same "MSF" stem, different version byte *)
            let h = Bytes.of_string "MSF\xff\x01\x00\x00\x00\x00" in
            ignore (Unix.write (Engine.Shard.fd a) h 0 (Bytes.length h));
            match Engine.Shard.recv ~timeout_s:2. b with
            | Error (Garbled msg) ->
              check Alcotest.bool "mentions protocol"
                true
                (Astring.String.is_infix ~affix:"protocol" msg
                 || String.length msg > 0)
            | Ok _ | Error _ -> Alcotest.fail "expected Garbled"));
    tc "oversized length is garbled" (fun () ->
        with_socketpair (fun a b ->
            let h = Bytes.create 9 in
            Bytes.blit_string Engine.Shard.magic 0 h 0 4;
            Bytes.set_uint8 h 4 1 (* Request *);
            Bytes.set_int32_be h 5 0x7fffffffl;
            ignore (Unix.write (Engine.Shard.fd a) h 0 9);
            match Engine.Shard.recv ~timeout_s:2. b with
            | Error (Garbled _) -> ()
            | Ok _ | Error _ -> Alcotest.fail "expected Garbled"));
    tc "short frame (EOF mid-payload) is garbled, not a hang" (fun () ->
        with_socketpair (fun a b ->
            let h = Bytes.create 11 in
            Bytes.blit_string Engine.Shard.magic 0 h 0 4;
            Bytes.set_uint8 h 4 3 (* Result *);
            Bytes.set_int32_be h 5 100l (* promises 100 payload bytes *);
            (* ...delivers 2 *)
            ignore (Unix.write (Engine.Shard.fd a) h 0 11);
            Unix.close (Engine.Shard.fd a);
            match Engine.Shard.recv ~timeout_s:2. b with
            | Error (Garbled _) -> ()
            | Ok _ | Error _ -> Alcotest.fail "expected Garbled"));
    tc "stalled mid-frame peer times out" (fun () ->
        with_socketpair (fun a b ->
            let h = Bytes.create 9 in
            Bytes.blit_string Engine.Shard.magic 0 h 0 4;
            Bytes.set_uint8 h 4 3;
            Bytes.set_int32_be h 5 100l;
            ignore (Unix.write (Engine.Shard.fd a) h 0 9);
            (* peer stays connected but never sends the payload *)
            let t0 = Unix.gettimeofday () in
            (match Engine.Shard.recv ~timeout_s:0.3 b with
            | Error Timeout -> ()
            | Ok _ | Error _ -> Alcotest.fail "expected Timeout");
            check Alcotest.bool "returned promptly" true
              (Unix.gettimeofday () -. t0 < 2.)));
    tc "EOF at a frame boundary is an orderly Closed" (fun () ->
        with_socketpair (fun a b ->
            Unix.close (Engine.Shard.fd a);
            match Engine.Shard.recv ~timeout_s:2. b with
            | Error Closed -> ()
            | Ok _ | Error _ -> Alcotest.fail "expected Closed"));
    tc "encode/decode round-trips; truncated payload is an Error" (fun () ->
        let v = (42, "hello", [ 1.5; 2.5 ]) in
        let s = Engine.Shard.encode v in
        (match Engine.Shard.decode s with
        | Ok v' ->
          check
            Alcotest.(triple int string (list (float 1e-9)))
            "round-trip" v v'
        | Error msg -> Alcotest.fail msg);
        (match Engine.Shard.decode (String.sub s 0 (String.length s - 1)) with
        | Error _ -> ()
        | Ok (_ : int * string * float list) ->
          Alcotest.fail "truncated payload decoded");
        match Engine.Shard.decode "xx" with
        | Error _ -> ()
        | Ok (_ : int) -> Alcotest.fail "2-byte string decoded");
  ]

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

(* a pure work function: the pooled result must match the inline one *)
let upper_f ~heartbeat ~seq ~attempt:_ body =
  heartbeat ~execs:(seq + 1) ~covered:0 ~crashes:0;
  String.uppercase_ascii body ^ Fmt.str "#%d" seq

let results_testable =
  Alcotest.(array (result string string))

let pool_tests =
  [
    tc "run_pool shards:1 ≡ shards:3 (fork)" (fun () ->
        let leases = Array.init 7 (fun i -> Fmt.str "lease-%d" i) in
        let seq_r, seq_stats =
          Engine.Shard.run_pool ~shards:1 ~f:upper_f leases
        in
        let par_r, _ =
          Engine.Shard.run_pool ~shards:3 ~backend:Engine.Shard.Fork
            ~f:upper_f leases
        in
        check results_testable "results equal" seq_r par_r;
        check Alcotest.int "no deaths inline" 0 seq_stats.Engine.Shard.st_died;
        Array.iteri
          (fun i r ->
            check
              Alcotest.(result string string)
              "computed" (Ok (Fmt.str "LEASE-%d#%d" i i)) r)
          seq_r);
    tc "heartbeats reach the coordinator" (fun () ->
        let beats = ref 0 in
        let leases = Array.init 3 (fun i -> string_of_int i) in
        let _, _ =
          Engine.Shard.run_pool ~shards:2 ~backend:Engine.Shard.Fork
            ~on_heartbeat:(fun ~shard:_ ~execs:_ ~covered:_ ~crashes:_ ->
              incr beats)
            ~f:upper_f leases
        in
        check Alcotest.bool "got heartbeats" true (!beats >= 1));
    tc "worker death mid-lease: lease requeued, pool recovers" (fun () ->
        (* kill once: the lease carries its own poison, first attempt only *)
        let f ~heartbeat:_ ~seq:_ ~attempt body =
          if body = "die" && attempt = 0 && Engine.Shard.in_worker () then
            Unix._exit 42;
          "ok:" ^ body
        in
        let ctx = Engine.Ctx.create () in
        let leases = [| "a"; "die"; "b"; "c" |] in
        let r, stats =
          Engine.Shard.run_pool ~shards:2 ~backend:Engine.Shard.Fork ~ctx ~f
            leases
        in
        check results_testable "all recovered"
          [| Ok "ok:a"; Ok "ok:die"; Ok "ok:b"; Ok "ok:c" |]
          r;
        check Alcotest.bool "death counted" true
          (stats.Engine.Shard.st_died >= 1);
        check Alcotest.bool "requeue counted" true
          (stats.Engine.Shard.st_requeued >= 1);
        (* interventions land in the metrics registry *)
        check Alcotest.bool "shard.worker_died bumped" true
          (Engine.Metrics.counter_value
             (Engine.Metrics.counter ctx.Engine.Ctx.metrics
                "shard.worker_died")
           >= 1));
    tc "deterministic failure burns attempts then lands in Error" (fun () ->
        let f ~heartbeat:_ ~seq:_ ~attempt:_ body =
          if body = "bad" then failwith "always broken";
          "ok:" ^ body
        in
        let r, stats =
          Engine.Shard.run_pool ~shards:2 ~backend:Engine.Shard.Fork
            ~max_attempts:2 ~f [| "x"; "bad"; "y" |]
        in
        (match r.(1) with
        | Error msg ->
          check Alcotest.bool "carries the exception" true
            (Astring.String.is_infix ~affix:"always broken" msg)
        | Ok _ -> Alcotest.fail "deterministic failure succeeded");
        check
          Alcotest.(result string string)
          "siblings unaffected" (Ok "ok:x") r.(0);
        check
          Alcotest.(result string string)
          "siblings unaffected" (Ok "ok:y") r.(2);
        (* healthy-worker failures are not deaths *)
        check Alcotest.int "no deaths" 0 stats.Engine.Shard.st_died);
  ]

(* ------------------------------------------------------------------ *)
(* Sharded campaign coordinator                                        *)
(* ------------------------------------------------------------------ *)

let small_cfg =
  {
    Fuzzing.Campaign.default_config with
    iterations = 60;
    seeds = 12;
    sample_every = 15;
    jobs = 1;
  }

let some_fuzzers = Fuzzing.Campaign.[ MuCFuzz_s; AFLpp ]

let result_testable =
  Alcotest.testable
    (fun ppf (r : Fuzzing.Fuzz_result.t) ->
      Fmt.pf ppf "%s: %d mutants, %d covered, %d crashes" r.fuzzer_name
        r.total_mutants
        (Simcomp.Coverage.covered r.coverage)
        (Fuzzing.Fuzz_result.unique_crashes r))
    Fuzzing.Fuzz_result.equal

let run_coordinator ?opt_levels ?checkpoint ?resume ~shards () =
  Fuzzing.Coordinator.run ~cfg:small_cfg ~fuzzers:some_fuzzers ?opt_levels
    ?checkpoint ?resume ~shards ~backend:Engine.Shard.Fork ()

let coordinator_tests =
  [
    tc "shards:1 ≡ shards:4: results, coverage, crashes, report" (fun () ->
        let t1 = run_coordinator ~shards:1 () in
        let t4 = run_coordinator ~shards:4 () in
        check Alcotest.int "unit count"
          (List.length t1.Fuzzing.Coordinator.results)
          (List.length t4.Fuzzing.Coordinator.results);
        List.iter2
          (fun (u1, r1) (u4, r4) ->
            check Alcotest.string "unit order"
              (Fuzzing.Coordinator.unit_name u1)
              (Fuzzing.Coordinator.unit_name u4);
            check result_testable
              (Fuzzing.Coordinator.unit_name u1)
              r1 r4)
          t1.Fuzzing.Coordinator.results t4.Fuzzing.Coordinator.results;
        check Alcotest.(list string) "crash sets"
          (Fuzzing.Coordinator.all_crashes t1)
          (Fuzzing.Coordinator.all_crashes t4);
        check Alcotest.bool "aggregate coverage" true
          (Simcomp.Coverage.equal
             (Fuzzing.Coordinator.aggregate_coverage t1)
             (Fuzzing.Coordinator.aggregate_coverage t4));
        (* the campaign report (no engine: the span table is wall-clock)
           is byte-identical *)
        check Alcotest.string "campaign-report.md"
          (Fuzzing.Coordinator.report t1)
          (Fuzzing.Coordinator.report t4);
        check Alcotest.int "no failures" 0
          (List.length t4.Fuzzing.Coordinator.failures);
        check Alcotest.int "no interventions" 0
          t4.Fuzzing.Coordinator.shard_stats.Engine.Shard.st_died);
    tc "worker death mid-lease: same final result, requeue counted"
      (fun () ->
        let baseline = run_coordinator ~shards:1 () in
        Unix.putenv "METAMUT_SHARD_KILL" "uCFuzz.s-GCC";
        let killed =
          Fun.protect
            ~finally:(fun () -> Unix.putenv "METAMUT_SHARD_KILL" "")
            (fun () -> run_coordinator ~shards:2 ())
        in
        check Alcotest.bool "a worker died" true
          (killed.Fuzzing.Coordinator.shard_stats.Engine.Shard.st_died >= 1);
        check Alcotest.bool "the lease was requeued" true
          (killed.Fuzzing.Coordinator.shard_stats.Engine.Shard.st_requeued
           >= 1);
        check Alcotest.string "report identical after recovery"
          (Fuzzing.Coordinator.report baseline)
          (Fuzzing.Coordinator.report killed));
    tc "opt-matrix: deterministic across shard counts, levels differ"
      (fun () ->
        let t1 = run_coordinator ~opt_levels:[ 0; 2 ] ~shards:1 () in
        let t2 = run_coordinator ~opt_levels:[ 0; 2 ] ~shards:2 () in
        check Alcotest.string "opt-matrix report"
          (Fuzzing.Coordinator.report t1)
          (Fuzzing.Coordinator.report t2);
        check Alcotest.int "levels x cells" 8
          (List.length t1.Fuzzing.Coordinator.results);
        (* -O0 and -O2 run different pass pipelines: coverage differs *)
        let cov u =
          List.assoc_opt u t1.Fuzzing.Coordinator.results
          |> Option.map (fun (r : Fuzzing.Fuzz_result.t) ->
                 Simcomp.Coverage.covered r.coverage)
        in
        let u l =
          {
            Fuzzing.Coordinator.u_fuzzer = Fuzzing.Campaign.MuCFuzz_s;
            u_compiler = Simcomp.Compiler.Gcc;
            u_opt = Some l;
          }
        in
        check Alcotest.bool "distinct coverage across -O levels" true
          (cov (u 0) <> cov (u 2)));
    tc "checkpoint files are Campaign-compatible: sequential save, \
        sharded resume" (fun () ->
        let dir =
          Filename.concat (Filename.get_temp_dir_name ())
            (Fmt.str "metamut-shard-ckpt-%d" (Unix.getpid ()))
        in
        let seq =
          Fuzzing.Campaign.run ~cfg:small_cfg ~fuzzers:some_fuzzers
            ~checkpoint:dir ()
        in
        (* every cell completed sequentially; the sharded coordinator
           must restore all of them from Campaign.run's own files *)
        let resumed =
          run_coordinator ~shards:2 ~checkpoint:dir ~resume:true ()
        in
        check Alcotest.int "all units restored"
          (List.length seq.Fuzzing.Campaign.results)
          resumed.Fuzzing.Coordinator.resumed_units;
        List.iter2
          (fun (_, r_seq) (_, r_sh) ->
            check result_testable "restored result" r_seq r_sh)
          seq.Fuzzing.Campaign.results resumed.Fuzzing.Coordinator.results;
        (* and a fresh sharded run writes files a sequential campaign
           can restore *)
        let dir2 = dir ^ "-b" in
        let sh = run_coordinator ~shards:2 ~checkpoint:dir2 () in
        let seq2 =
          Fuzzing.Campaign.run ~cfg:small_cfg ~fuzzers:some_fuzzers
            ~checkpoint:dir2 ~resume:true ()
        in
        check Alcotest.int "sequential restored sharded files"
          (List.length sh.Fuzzing.Coordinator.results)
          seq2.Fuzzing.Campaign.resumed_cells;
        List.iter
          (fun d ->
            Array.iter
              (fun f -> try Sys.remove (Filename.concat d f) with _ -> ())
              (try Sys.readdir d with _ -> [||]);
            try Unix.rmdir d with _ -> ())
          [ dir; dir2 ]);
  ]

(* ------------------------------------------------------------------ *)
(* Status TTY ownership                                                *)
(* ------------------------------------------------------------------ *)

let status_tests =
  [
    tc "non-owners render nothing; the owner draws the aggregate line"
      (fun () ->
        Fun.protect
          ~finally:(fun () -> Engine.Status.set_tty_owner true)
          (fun () ->
            let buf = Buffer.create 64 in
            let ctx = Engine.Ctx.create () in
            let st =
              Engine.Status.attach ~out:(Buffer.add_string buf)
                ~interval_ns:0L ~label:"shardtest" ctx
            in
            Engine.Status.set_tty_owner false;
            Engine.Status.update st ~execs:100 ~covered:5 ~crashes:1 ();
            Engine.Status.finish st;
            check Alcotest.string "worker drew nothing" "" (Buffer.contents buf);
            (* state still folds while silent: the line is current the
               moment ownership returns *)
            check Alcotest.bool "line carries the numbers" true
              (Astring.String.is_infix ~affix:"100 execs"
                 (Engine.Status.line st));
            Engine.Status.set_tty_owner true;
            let st2 =
              Engine.Status.attach ~out:(Buffer.add_string buf)
                ~interval_ns:0L ~label:"coord" ctx
            in
            Engine.Status.update st2 ~execs:7 ~covered:3 ~crashes:0 ();
            check Alcotest.bool "owner drew the aggregated line" true
              (Astring.String.is_infix ~affix:"7 execs"
                 (Buffer.contents buf));
            Engine.Status.finish st2));
  ]

let () =
  Alcotest.run "shard"
    [
      ("protocol", protocol_tests);
      ("pool", pool_tests);
      ("coordinator", coordinator_tests);
      ("status", status_tests);
    ]
