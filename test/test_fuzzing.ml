(* Tests for the fuzzing layer: seeds, the fragility model, μCFuzz
   (Algorithm 1), the baselines, the macro fuzzer, and the campaign
   driver. *)

open Cparse

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let seed_corpus = lazy (Fuzzing.Seeds.corpus ~n:30 (Rng.create 1))

let seeds_tests =
  [
    tc "every template parses and type checks" (fun () ->
        List.iter
          (fun src ->
            match Parser.parse src with
            | Error e -> Alcotest.failf "template does not parse: %s" e
            | Ok tu ->
              if not (Typecheck.check tu).Typecheck.r_ok then
                Alcotest.failf "template does not type check:\n%s" src)
          Fuzzing.Seeds.templates);
    tc "corpus has the requested size" (fun () ->
        check Alcotest.bool "at least n" true
          (List.length (Lazy.force seed_corpus) >= 30));
    tc "corpus members compile" (fun () ->
        List.iter
          (fun src ->
            match
              Simcomp.Compiler.compile Simcomp.Compiler.Gcc
                Simcomp.Compiler.default_options src
            with
            | Simcomp.Compiler.Compiled _ -> ()
            | Simcomp.Compiler.Crashed _ -> () (* latent bugs are possible *)
            | Simcomp.Compiler.Compile_error es ->
              Alcotest.failf "seed does not compile: %s"
                (String.concat ";" es))
          (Lazy.force seed_corpus));
    tc "corpus includes sprintf/goto-rich templates" (fun () ->
        let feats =
          List.filter_map
            (fun src ->
              match Parser.parse src with
              | Ok tu -> Some (Simcomp.Features.ast_features tu)
              | Error _ -> None)
            (Lazy.force seed_corpus)
        in
        check Alcotest.bool "variadic calls" true
          (List.exists (fun a -> a.Simcomp.Features.has_variadic_call) feats);
        check Alcotest.bool "gotos" true
          (List.exists (fun a -> a.Simcomp.Features.n_gotos > 0) feats);
        check Alcotest.bool "fallthrough" true
          (List.exists (fun a -> a.Simcomp.Features.has_fallthrough) feats));
    tc "corpus generation is deterministic" (fun () ->
        let a = Fuzzing.Seeds.corpus ~n:10 (Rng.create 7) in
        let b = Fuzzing.Seeds.corpus ~n:10 (Rng.create 7) in
        check Alcotest.(list string) "same" a b);
  ]

let fragility_tests =
  [
    tc "corrupt changes the source" (fun () ->
        let src = List.hd (Lazy.force seed_corpus) in
        let rng = Rng.create 3 in
        let changed = ref 0 in
        for _ = 1 to 20 do
          if not (String.equal (Fuzzing.Fragility.corrupt rng src) src) then
            incr changed
        done;
        check Alcotest.bool "mostly changes" true (!changed >= 15));
    tc "corrupt is deterministic under the same rng" (fun () ->
        let src = List.hd (Lazy.force seed_corpus) in
        let a = Fuzzing.Fragility.corrupt (Rng.create 5) src in
        let b = Fuzzing.Fragility.corrupt (Rng.create 5) src in
        check Alcotest.string "same" a b);
    tc "supervised slips are rarer than unsupervised" (fun () ->
        check Alcotest.bool "ordering" true
          (Fuzzing.Fragility.supervised_slip_probability
          < Fuzzing.Fragility.unsupervised_slip_probability));
    tc "render without slip equals pretty-print" (fun () ->
        (* probability of 200 consecutive slips is negligible; check that
           at least one render matches the pretty form *)
        let m = List.hd Mutators.Registry.core in
        let tu =
          match Parser.parse "int main(void) { return 1; }" with
          | Ok tu -> tu
          | Error _ -> assert false
        in
        let rng = Rng.create 9 in
        let pretty = Pretty.tu_to_string tu in
        let matched = ref false in
        for _ = 1 to 200 do
          if String.equal (Fuzzing.Fragility.render rng m tu) pretty then
            matched := true
        done;
        check Alcotest.bool "some clean renders" true !matched);
  ]

let aflpp_tests =
  [
    tc "havoc mutation changes bytes deterministically" (fun () ->
        let src = "int main(void) { return 0; }" in
        let a = Fuzzing.Baselines.havoc_byte_mutation (Rng.create 2) src in
        let b = Fuzzing.Baselines.havoc_byte_mutation (Rng.create 2) src in
        check Alcotest.string "same" a b);
    tc "havoc mostly breaks the parse" (fun () ->
        let src = List.hd (Lazy.force seed_corpus) in
        let rng = Rng.create 4 in
        let broken = ref 0 in
        for _ = 1 to 50 do
          let m = Fuzzing.Baselines.havoc_byte_mutation rng src in
          match Parser.parse m with Error _ -> incr broken | Ok _ -> ()
        done;
        check Alcotest.bool "mostly broken" true (!broken > 30));
  ]

let mucfuzz_tests =
  [
    tc "run produces coverage, pool growth, and a trend" (fun () ->
        let cfg =
          {
            (Fuzzing.Mucfuzz.default_config ()) with
            Fuzzing.Mucfuzz.max_attempts_per_iteration = 8;
            sample_every = 5;
          }
        in
        let r =
          Fuzzing.Mucfuzz.run ~cfg ~rng:(Rng.create 1)
            ~compiler:Simcomp.Compiler.Gcc
            ~seeds:(Lazy.force seed_corpus) ~iterations:30 ~name:"t" ()
        in
        check Alcotest.bool "covered" true
          (Simcomp.Coverage.covered r.Fuzzing.Fuzz_result.coverage > 100);
        check Alcotest.bool "mutants" true (r.Fuzzing.Fuzz_result.total_mutants > 0);
        check Alcotest.bool "trend" true
          (List.length r.Fuzzing.Fuzz_result.coverage_trend >= 5);
        (* trend is monotone *)
        let rec mono = function
          | (_, a) :: ((_, b) :: _ as rest) -> a <= b && mono rest
          | _ -> true
        in
        check Alcotest.bool "monotone" true
          (mono r.Fuzzing.Fuzz_result.coverage_trend));
    tc "deterministic under the same seed" (fun () ->
        let go () =
          let cfg =
            {
              (Fuzzing.Mucfuzz.default_config ()) with
              Fuzzing.Mucfuzz.max_attempts_per_iteration = 6;
            }
          in
          let r =
            Fuzzing.Mucfuzz.run ~cfg ~rng:(Rng.create 77)
              ~compiler:Simcomp.Compiler.Gcc
              ~seeds:(Lazy.force seed_corpus) ~iterations:15 ~name:"t" ()
          in
          ( Simcomp.Coverage.covered r.Fuzzing.Fuzz_result.coverage,
            r.Fuzzing.Fuzz_result.total_mutants,
            Fuzzing.Fuzz_result.unique_crashes r )
        in
        check
          Alcotest.(triple int int int)
          "same run" (go ()) (go ()));
    tc "crash records keep first discovery and input" (fun () ->
        let r = Fuzzing.Fuzz_result.make ~fuzzer_name:"x" ~compiler:Simcomp.Compiler.Gcc in
        let crash =
          {
            Simcomp.Crash.bug_id = "b";
            stage = Simcomp.Crash.Optimization;
            kind = Simcomp.Crash.Hang;
            frames = [ "f"; "g" ];
          }
        in
        Fuzzing.Fuzz_result.record_crash r ~iteration:5 ~input:"src1" crash;
        Fuzzing.Fuzz_result.record_crash r ~iteration:9 ~input:"src2" crash;
        check Alcotest.int "unique" 1 (Fuzzing.Fuzz_result.unique_crashes r);
        let rec_ = Hashtbl.find r.Fuzzing.Fuzz_result.crashes "f|g" in
        check Alcotest.int "first iteration" 5
          rec_.Fuzzing.Fuzz_result.cr_first_iteration;
        check Alcotest.string "first input" "src1"
          rec_.Fuzzing.Fuzz_result.cr_input);
    tc "crashes_by_stage partitions the crash set" (fun () ->
        let r = Fuzzing.Fuzz_result.make ~fuzzer_name:"x" ~compiler:Simcomp.Compiler.Gcc in
        List.iteri
          (fun i stage ->
            Fuzzing.Fuzz_result.record_crash r ~iteration:i ~input:""
              {
                Simcomp.Crash.bug_id = Fmt.str "b%d" i;
                stage;
                kind = Simcomp.Crash.Segfault;
                frames = [ Fmt.str "f%d" i ];
              })
          Simcomp.Crash.[ Front_end; Front_end; Optimization ];
        let by = Fuzzing.Fuzz_result.crashes_by_stage r in
        check Alcotest.int "front-end" 2
          (List.assoc Simcomp.Crash.Front_end by);
        check Alcotest.int "opt" 1
          (List.assoc Simcomp.Crash.Optimization by));
    tc "checkpoint/resume reproduces an uninterrupted run" (fun () ->
        let file =
          Filename.concat (Filename.temp_dir "metamut-mucfuzz" "") "m.ckpt"
        in
        let cfg =
          {
            (Fuzzing.Mucfuzz.default_config ()) with
            Fuzzing.Mucfuzz.max_attempts_per_iteration = 6;
            sample_every = 5;
          }
        in
        let go ?checkpoint ?resume () =
          Fuzzing.Mucfuzz.run ~cfg ?checkpoint ?resume ~rng:(Rng.create 9)
            ~compiler:Simcomp.Compiler.Gcc ~seeds:(Lazy.force seed_corpus)
            ~iterations:40 ~name:"t" ()
        in
        let full = go () in
        (* every=15 leaves the last snapshot at iteration 30: resuming
           replays the final 10 iterations from restored state *)
        let checkpointed = go ~checkpoint:(file, 15) () in
        check Alcotest.bool "checkpointing is transparent" true
          (Fuzzing.Fuzz_result.equal full checkpointed);
        let resumed = go ~resume:file () in
        check Alcotest.bool "resumed run identical" true
          (Fuzzing.Fuzz_result.equal full resumed));
    tc "corpus scheduling is deterministic and keeps finding coverage"
      (fun () ->
        (* pool_max 8 on a 60-iteration run forces several trim cycles,
           so favored-set selection, claim transfer, and the index remap
           are all exercised by the equality check *)
        let cfg =
          {
            (Fuzzing.Mucfuzz.default_config ()) with
            Fuzzing.Mucfuzz.max_attempts_per_iteration = 6;
            sample_every = 10;
            schedule = true;
            pool_max = 8;
          }
        in
        let go () =
          Fuzzing.Mucfuzz.run ~cfg ~rng:(Rng.create 21)
            ~compiler:Simcomp.Compiler.Gcc ~seeds:(Lazy.force seed_corpus)
            ~iterations:60 ~name:"t" ()
        in
        let a = go () and b = go () in
        check Alcotest.bool "same run" true (Fuzzing.Fuzz_result.equal a b);
        check Alcotest.bool "coverage found" true
          (Simcomp.Coverage.covered a.Fuzzing.Fuzz_result.coverage > 100));
    tc "scheduling off leaves the default run untouched" (fun () ->
        (* the scheduler draws extra RNG only when enabled: a default
           config run must be byte-for-byte the run from before the
           scheduler existed (same stream, same decisions) *)
        let go schedule =
          let cfg =
            {
              (Fuzzing.Mucfuzz.default_config ()) with
              Fuzzing.Mucfuzz.max_attempts_per_iteration = 6;
              sample_every = 10;
              schedule;
            }
          in
          Fuzzing.Mucfuzz.run ~cfg ~rng:(Rng.create 33)
            ~compiler:Simcomp.Compiler.Gcc ~seeds:(Lazy.force seed_corpus)
            ~iterations:30 ~name:"t" ()
        in
        let off = go false and off' = go false in
        check Alcotest.bool "default deterministic" true
          (Fuzzing.Fuzz_result.equal off off'));
    tc "scheduled checkpoint/resume reproduces an uninterrupted run"
      (fun () ->
        let file =
          Filename.concat (Filename.temp_dir "metamut-sched" "") "m.ckpt"
        in
        let cfg =
          {
            (Fuzzing.Mucfuzz.default_config ()) with
            Fuzzing.Mucfuzz.max_attempts_per_iteration = 6;
            sample_every = 5;
            schedule = true;
            pool_max = 8;
          }
        in
        let go ?checkpoint ?resume () =
          Fuzzing.Mucfuzz.run ~cfg ?checkpoint ?resume ~rng:(Rng.create 9)
            ~compiler:Simcomp.Compiler.Gcc ~seeds:(Lazy.force seed_corpus)
            ~iterations:40 ~name:"t" ()
        in
        let full = go () in
        let checkpointed = go ~checkpoint:(file, 15) () in
        check Alcotest.bool "checkpointing is transparent" true
          (Fuzzing.Fuzz_result.equal full checkpointed);
        let resumed = go ~resume:file () in
        check Alcotest.bool "resumed run identical" true
          (Fuzzing.Fuzz_result.equal full resumed));
    tc "injected compile hangs surface as watchdog Hang crashes" (fun () ->
        let faults =
          Engine.Faults.create
            { Engine.Faults.no_faults with Engine.Faults.compile_hang = 1.0 }
        in
        let r =
          Fuzzing.Mucfuzz.run ~faults ~rng:(Rng.create 4)
            ~compiler:Simcomp.Compiler.Gcc ~seeds:(Lazy.force seed_corpus)
            ~iterations:10 ~name:"t" ()
        in
        check Alcotest.bool "crash recorded" true
          (Fuzzing.Fuzz_result.unique_crashes r > 0);
        Hashtbl.iter
          (fun _ cr ->
            check Alcotest.bool "hang kind" true
              (cr.Fuzzing.Fuzz_result.cr_crash.Simcomp.Crash.kind
              = Simcomp.Crash.Hang))
          r.Fuzzing.Fuzz_result.crashes);
  ]

let baseline_tests =
  [
    tc "grayc has exactly five mutators" (fun () ->
        check Alcotest.int "five" 5
          (List.length Fuzzing.Baselines.grayc_mutators));
    tc "generators produce near-100% compilable programs" (fun () ->
        let r =
          Fuzzing.Baselines.run_csmith ~rng:(Rng.create 5)
            ~compiler:Simcomp.Compiler.Gcc ~iterations:20 ~sample_every:5 ()
        in
        check Alcotest.bool "ratio" true
          (Fuzzing.Fuzz_result.compilable_ratio r > 95.));
    tc "afl++ produces mostly non-compilable mutants" (fun () ->
        let r =
          Fuzzing.Baselines.run_aflpp ~rng:(Rng.create 6)
            ~compiler:Simcomp.Compiler.Gcc ~seeds:(Lazy.force seed_corpus)
            ~iterations:40 ~sample_every:10 ()
        in
        check Alcotest.bool "low ratio" true
          (Fuzzing.Fuzz_result.compilable_ratio r < 20.));
  ]

let macro_tests =
  [
    tc "macro fuzzer runs with random options and havoc" (fun () ->
        let r =
          Fuzzing.Macro_fuzzer.run ~rng:(Rng.create 8)
            ~compiler:Simcomp.Compiler.Gcc ~seeds:(Lazy.force seed_corpus)
            ~iterations:40 ()
        in
        check Alcotest.bool "mutants" true (r.Fuzzing.Fuzz_result.total_mutants > 0);
        check Alcotest.bool "coverage" true
          (Simcomp.Coverage.covered r.Fuzzing.Fuzz_result.coverage > 100));
    tc "resource limit drops oversized mutants" (fun () ->
        let cfg =
          { Fuzzing.Macro_fuzzer.default_config with max_program_bytes = 10 }
        in
        let r =
          Fuzzing.Macro_fuzzer.run ~cfg ~rng:(Rng.create 9)
            ~compiler:Simcomp.Compiler.Gcc ~seeds:(Lazy.force seed_corpus)
            ~iterations:20 ()
        in
        check Alcotest.int "all dropped" 0 r.Fuzzing.Fuzz_result.total_mutants);
  ]

let campaign_tests =
  [
    tc "campaign produces one result per fuzzer and compiler" (fun () ->
        let cfg =
          {
            Fuzzing.Campaign.default_config with
            iterations = 12;
            seeds = 10;
            sample_every = 4;
            max_attempts = 4;
          }
        in
        let t = Fuzzing.Campaign.run ~cfg () in
        check Alcotest.int "results" 12 (List.length t.Fuzzing.Campaign.results));
    tc "crash sets are prefixed by compiler" (fun () ->
        let cfg =
          {
            Fuzzing.Campaign.default_config with
            iterations = 10;
            seeds = 8;
            sample_every = 5;
            max_attempts = 4;
          }
        in
        let t = Fuzzing.Campaign.run ~cfg ~fuzzers:[ Fuzzing.Campaign.MuCFuzz_s ] () in
        Hashtbl.iter
          (fun k () ->
            check Alcotest.bool "prefixed" true
              (String.length k > 4
              && (String.sub k 0 4 = "GCC:" || String.sub k 0 6 = "Clang:")))
          (Fuzzing.Campaign.crash_set t Fuzzing.Campaign.MuCFuzz_s));
    tc "fuzzer names are stable" (fun () ->
        check Alcotest.(list string) "names"
          [ "uCFuzz.s"; "uCFuzz.u"; "AFL++"; "GrayC"; "Csmith"; "YARPGen" ]
          (List.map Fuzzing.Campaign.fuzzer_name Fuzzing.Campaign.all_fuzzers));
    tc "worker-crash faults do not change results" (fun () ->
        (* deaths strike between items, so supervision must requeue and
           reproduce the fault-free campaign exactly *)
        let cfg =
          {
            Fuzzing.Campaign.default_config with
            iterations = 8;
            seeds = 6;
            sample_every = 4;
            max_attempts = 4;
            jobs = 3;
          }
        in
        let fuzzers = Fuzzing.Campaign.[ MuCFuzz_u; AFLpp ] in
        let clean = Fuzzing.Campaign.run ~cfg ~fuzzers () in
        let faults =
          Engine.Faults.create ~seed:5
            { Engine.Faults.no_faults with Engine.Faults.worker_crash = 1.0 }
        in
        let faulted = Fuzzing.Campaign.run ~cfg ~fuzzers ~faults () in
        check Alcotest.int "no failures" 0
          (List.length faulted.Fuzzing.Campaign.failures);
        List.iter2
          (fun (c1, r1) (c2, r2) ->
            check Alcotest.bool "same cell" true (c1 = c2);
            check Alcotest.bool "equal result" true
              (Fuzzing.Fuzz_result.equal r1 r2))
          clean.Fuzzing.Campaign.results faulted.Fuzzing.Campaign.results);
    tc "scheduled campaigns are identical across job counts" (fun () ->
        (* corpus scheduling lives inside each cell's private RNG and
           pool, so parallelism must not perturb it *)
        let cfg jobs =
          {
            Fuzzing.Campaign.default_config with
            iterations = 10;
            seeds = 8;
            sample_every = 4;
            max_attempts = 4;
            schedule = true;
            jobs;
          }
        in
        let fuzzers = Fuzzing.Campaign.[ MuCFuzz_s; MuCFuzz_u ] in
        let serial = Fuzzing.Campaign.run ~cfg:(cfg 1) ~fuzzers () in
        let par = Fuzzing.Campaign.run ~cfg:(cfg 4) ~fuzzers () in
        List.iter2
          (fun (c1, r1) (c2, r2) ->
            check Alcotest.bool "same cell" true (c1 = c2);
            check Alcotest.bool "equal result" true
              (Fuzzing.Fuzz_result.equal r1 r2))
          serial.Fuzzing.Campaign.results par.Fuzzing.Campaign.results);
    tc "campaign resume reproduces the uninterrupted result" (fun () ->
        let cfg =
          {
            Fuzzing.Campaign.default_config with
            iterations = 10;
            seeds = 8;
            sample_every = 4;
            max_attempts = 4;
            jobs = 2;
          }
        in
        let fuzzers = Fuzzing.Campaign.[ MuCFuzz_u; Csmith ] in
        let full = Fuzzing.Campaign.run ~cfg ~fuzzers () in
        let dir = Filename.temp_dir "metamut-campaign" "" in
        let first = Fuzzing.Campaign.run ~cfg ~fuzzers ~checkpoint:dir () in
        check Alcotest.int "first run computes everything" 0
          first.Fuzzing.Campaign.resumed_cells;
        (* simulate a crash that lost one completed cell's result *)
        Sys.remove (Filename.concat dir "done-uCFuzz.u-GCC.ckpt");
        let resumed =
          Fuzzing.Campaign.run ~cfg ~fuzzers ~checkpoint:dir ~resume:true ()
        in
        check Alcotest.int "three cells restored" 3
          resumed.Fuzzing.Campaign.resumed_cells;
        check Alcotest.int "no failures" 0
          (List.length resumed.Fuzzing.Campaign.failures);
        List.iter2
          (fun (c1, r1) (c2, r2) ->
            check Alcotest.bool "same cell" true (c1 = c2);
            check Alcotest.bool "equal result" true
              (Fuzzing.Fuzz_result.equal r1 r2))
          full.Fuzzing.Campaign.results resumed.Fuzzing.Campaign.results);
  ]

let report_tests =
  [
    tc "table renders aligned columns" (fun () ->
        let t = Report.Table.create ~title:"T" ~header:[ "a"; "b" ] in
        Report.Table.add_row t [ "x"; "1" ];
        Report.Table.add_int_row t "y" [ 22 ];
        let s = Report.Table.render t in
        check Alcotest.bool "has title" true (String.length s > 0);
        check Alcotest.bool "rows present" true
          (String.split_on_char '\n' s |> List.length >= 5));
    tc "series data rendering" (fun () ->
        let s =
          Report.Series.render_data ~title:"x"
            [ Report.Series.make ~label:"l" ~points:[ (1, 2); (3, 4) ] ]
        in
        check Alcotest.bool "points" true (String.length s > 10));
    tc "venn counts exclusive members" (fun () ->
        let mk xs =
          let h = Hashtbl.create 4 in
          List.iter (fun x -> Hashtbl.replace h x ()) xs;
          h
        in
        let s =
          Report.Series.render_venn ~title:"v"
            [ ("A", mk [ "1"; "2" ]); ("B", mk [ "2"; "3" ]) ]
        in
        check Alcotest.bool "union of 3" true
          (let rec contains h n i =
             i + String.length n <= String.length h
             && (String.sub h i (String.length n) = n || contains h n (i + 1))
           in
           contains s "union of unique crashes: 3" 0));
  ]

let wrongcode_trigger = {|
int r[6];
int total;
int main(void) {
  int a = (int)(char)100;
  for (int i = 0; i < 3; i++) total += i;
  for (int j = 0; j < 3; j++) total += j;
  r[1] += r[0];
  r[2] += r[1];
  r[3] += r[2];
  total = a - 7;
  return total & 255;
}
|}

let wrongcode_tests =
  [
    tc "crafted trigger is detected as a miscompilation" (fun () ->
        match
          Fuzzing.Wrongcode.check_program Simcomp.Compiler.Gcc
            Simcomp.Compiler.default_options wrongcode_trigger
        with
        | Some mm ->
          check Alcotest.bool "differs" true
            (mm.Fuzzing.Wrongcode.mm_reference
            <> mm.Fuzzing.Wrongcode.mm_observed)
        | None -> Alcotest.fail "miscompilation not detected");
    tc "the same shape is sound on Clang-sim" (fun () ->
        (* the injected wrong-code bug is GCC-specific *)
        check Alcotest.bool "no mismatch" true
          (Fuzzing.Wrongcode.check_program Simcomp.Compiler.Clang
             Simcomp.Compiler.default_options wrongcode_trigger
          = None));
    tc "clean programs never mismatch" (fun () ->
        let rng = Rng.create 31 in
        let cfg =
          { Ast_gen.default_config with
            allow_pointers = false; allow_structs = false;
            allow_strings = false; max_functions = 2; max_depth = 2 }
        in
        for _ = 1 to 20 do
          let src = Ast_gen.gen_source ~cfg rng in
          (* avoid programs that accidentally satisfy a wrong-code gate *)
          let a =
            Simcomp.Features.ast_features
              (Result.get_ok (Parser.parse src))
          in
          if
            Simcomp.Bugdb.check_miscompile ~compiler:Simcomp.Compiler.Gcc
              ~opt_level:3
              ~pipeline:
                (Simcomp.Compiler.pipeline_of
                   { Simcomp.Compiler.default_options with opt_level = 3 })
              ~ast:a
            = None
          then
            check Alcotest.bool "sound" true
              (Fuzzing.Wrongcode.check_program Simcomp.Compiler.Gcc
                 { Simcomp.Compiler.default_options with opt_level = 3 }
                 src
              = None)
        done);
    tc "hunt returns a well-formed report" (fun () ->
        let seeds = Fuzzing.Seeds.corpus ~n:15 (Rng.create 4) in
        let r =
          Fuzzing.Wrongcode.hunt ~rng:(Rng.create 6)
            ~compiler:Simcomp.Compiler.Gcc ~seeds ~iterations:60 ()
        in
        check Alcotest.bool "checked some" true
          (r.Fuzzing.Wrongcode.r_checked > 0));
  ]

(* ------------------------------------------------------------------ *)
(* Culprit-pass bisection                                              *)
(* ------------------------------------------------------------------ *)

(* One trigger per seeded miscompile, validated against the Bugdb ground
   truth (mc_culprit).  Where the bug needs a masking pass absent, the
   options disable it. *)
let bisect_cases =
  [
    ( "gcc-wrongcode-reassoc", Simcomp.Compiler.Gcc,
      { Simcomp.Compiler.default_options with opt_level = 2 },
      "constfold", wrongcode_trigger );
    ( "gcc-wrongcode-narrowing", Simcomp.Compiler.Gcc,
      { Simcomp.Compiler.default_options with opt_level = 3 },
      "loop-opt",
      "int main(void) { int x = (int)(char)200; int s = 3; int n = 1; while \
       (--n) s += 5; return (s - x) & 255; }" );
    ( "clang-wrongcode-instsimplify", Simcomp.Compiler.Clang,
      { Simcomp.Compiler.default_options with opt_level = 2 },
      "dce",
      "int main(void) { int a = 120; int b = 3; int c = a > b ? 1 : 2; int d \
       = b > a ? 3 : 4; int e; e = (c, d); switch (c) { case 1: e += 1; \
       break; default: e += 2; break; } return (a - b - e) & 255; }" );
    ( "gcc-wrongcode-strlen-nofold", Simcomp.Compiler.Gcc,
      { Simcomp.Compiler.default_options with
        opt_level = 2; disabled_passes = [ "constfold" ] },
      "strlen-opt",
      "char buf[16];\n\
       int helper(void) { return sprintf(buf, \"%s-pad\", buf); }\n\
       int main(void) { int a = 90; int b = 7; return (a - b) & 255; }" );
    ( "clang-wrongcode-jumpthread", Simcomp.Compiler.Clang,
      { Simcomp.Compiler.default_options with
        opt_level = 2; disabled_passes = [ "dce" ] },
      "simplify-cfg",
      "int main(void) { int a = 100; int b = 9; goto skip; a = 1; skip: \
       return (a - b) & 255; }" );
  ]

let bisect_tests =
  let open Fuzzing.Bisect in
  [
    tc "bisection recovers every seeded miscompile's culprit pass" (fun () ->
        List.iter
          (fun (id, compiler, opts, culprit, src) ->
            match run compiler opts src with
            | None -> Alcotest.failf "%s: no finding" id
            | Some v ->
              check Alcotest.bool (id ^ " is wrong-code") true
                (match v.v_finding with Wrong_code _ -> true | Ice _ -> false);
              check Alcotest.bool (id ^ " attributable") true v.v_attributable;
              check
                Alcotest.(list string)
                (id ^ " culprit") [ culprit ] v.v_culprits;
              check
                Alcotest.(option string)
                (id ^ " first divergent") (Some culprit) v.v_first_divergent)
          bisect_cases);
    tc "clean source yields no finding" (fun () ->
        check Alcotest.bool "none" true
          (run Simcomp.Compiler.Gcc Simcomp.Compiler.default_options
             "int main(void) { return 40 + 2; }"
          = None));
    tc "per-pass differential stays silent on clean programs" (fun () ->
        let rng = Rng.create 77 in
        let cfg =
          { Ast_gen.default_config with
            allow_pointers = false; allow_structs = false;
            allow_strings = false; max_functions = 2; max_depth = 2 }
        in
        for _ = 1 to 10 do
          let src = Ast_gen.gen_source ~cfg rng in
          match
            Simcomp.Compiler.compile_passes ~verify:true Simcomp.Compiler.Gcc
              Simcomp.Compiler.default_options src
          with
          | Ok tr ->
            check
              Alcotest.(option string)
              "no divergence" None tr.Simcomp.Compiler.pt_first_divergent
          | Error _ -> ()
        done);
    tc "an ICE bisects to the pass whose disabling clears it" (fun () ->
        (* gcc-dce-unfolded: fires when dce runs without a prior
           constfold, so with constfold already off the culprit is dce *)
        let opts =
          { Simcomp.Compiler.default_options with
            opt_level = 2; disabled_passes = [ "constfold" ] }
        in
        let src =
          "int main(void) { int a = 1; int b = 2; int c = a < b ? 1 : 2; int \
           d = b < a ? 3 : 4; return a + b + c + d; }"
        in
        match run Simcomp.Compiler.Gcc opts src with
        | Some v ->
          check Alcotest.bool "is ICE" true
            (match v.v_finding with
            | Ice { bug_id; _ } -> String.equal bug_id "gcc-dce-unfolded"
            | Wrong_code _ -> false);
          check Alcotest.bool "attributable" true v.v_attributable;
          check Alcotest.bool "dce among culprits" true
            (List.mem "dce" v.v_culprits)
        | None -> Alcotest.fail "expected an ICE finding");
    tc "bisection verdicts are deterministic" (fun () ->
        let _, compiler, opts, _, src = List.hd bisect_cases in
        let v1 = run compiler opts src and v2 = run compiler opts src in
        check Alcotest.bool "same verdict" true (v1 = v2));
  ]

let mutation_score_tests =
  [
    tc "potent mutators are killed, no-op wrappers are equivalent" (fun () ->
        let src =
          "int g = 5;\nint main(void) { g = g * 3; return g & 255; }"
        in
        let tu = Result.get_ok (Parser.parse src) in
        let reference =
          Option.get
            (Fuzzing.Mutation_score.observe
               (Fuzzing.Mutation_score.instrument_observability tu))
        in
        (* changing the literal changes behaviour *)
        let m = Option.get (Mutators.Registry.find_opt "ModifyIntegerLiteral") in
        let killed = ref false in
        for i = 1 to 10 do
          match Mutators.Mutator.apply m ~rng:(Rng.create i) tu with
          | Some tu' ->
            if
              Fuzzing.Mutation_score.classify ~reference
                (Fuzzing.Mutation_score.instrument_observability tu')
              = Fuzzing.Mutation_score.Killed
            then killed := true
          | None -> ()
        done;
        check Alcotest.bool "literal mutation killed" true !killed;
        (* a neutral wrapper is equivalent *)
        let m2 = Option.get (Mutators.Registry.find_opt "AddNeutralElement") in
        match Mutators.Mutator.apply m2 ~rng:(Rng.create 1) tu with
        | Some tu' ->
          check Alcotest.bool "neutral element equivalent" true
            (Fuzzing.Mutation_score.classify ~reference
               (Fuzzing.Mutation_score.instrument_observability tu')
            = Fuzzing.Mutation_score.Equivalent)
        | None -> Alcotest.fail "not applicable");
    tc "scores partition applications" (fun () ->
        let rng = Rng.create 9 in
        let cfg =
          { Ast_gen.default_config with
            allow_pointers = false; allow_strings = false;
            max_functions = 1; max_depth = 1 }
        in
        let programs = List.init 3 (fun _ -> Ast_gen.gen_tu ~cfg rng) in
        let scores =
          Fuzzing.Mutation_score.score ~tries:1 ~rng
            ~mutators:(List.filteri (fun i _ -> i < 20) Mutators.Registry.core)
            ~programs ()
        in
        List.iter
          (fun s ->
            let open Fuzzing.Mutation_score in
            check Alcotest.int s.s_mutator s.s_applied
              (s.s_killed + s.s_equivalent + s.s_invalid + s.s_inconclusive))
          scores);
    tc "aggregate sums components" (fun () ->
        let open Fuzzing.Mutation_score in
        let mk k e =
          { s_mutator = "m"; s_applied = k + e; s_killed = k;
            s_equivalent = e; s_invalid = 0; s_inconclusive = 0 }
        in
        let agg = aggregate [ mk 1 2; mk 3 4 ] in
        check Alcotest.int "killed" 4 agg.s_killed;
        check Alcotest.int "equivalent" 6 agg.s_equivalent;
        check (Alcotest.float 0.01) "rate" 40. (kill_rate agg));
  ]

let () =
  Alcotest.run "fuzzing"
    [
      ("seeds", seeds_tests);
      ("fragility", fragility_tests);
      ("aflpp", aflpp_tests);
      ("mucfuzz", mucfuzz_tests);
      ("baselines", baseline_tests);
      ("macro", macro_tests);
      ("campaign", campaign_tests);
      ("report", report_tests);
      ("wrongcode", wrongcode_tests);
      ("bisect", bisect_tests);
      ("mutation-score", mutation_score_tests);
    ]
