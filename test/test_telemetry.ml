(* Tests for the telemetry export layer: gauge merge policies, the
   Chrome trace buffer and its JSON rendering (golden, under a fake
   clock), Prometheus/JSON snapshot exporters (golden + round-trip
   parse), GC probes, the live status line, the final-trend-sample rule,
   and jobs:N invariance of the deterministic telemetry snapshot. *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let is_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* A deterministic nanosecond clock: +1ms per reading. *)
let fake_clock () =
  let t = ref 0L in
  fun () ->
    t := Int64.add !t 1_000_000L;
    !t

(* ------------------------------------------------------------------ *)
(* Gauge merge policies (Metrics.merge used to be last-writer-wins)     *)
(* ------------------------------------------------------------------ *)

let gauge_policy_tests =
  [
    tc "Max keeps the high-water mark across merge order" (fun () ->
        let merged order =
          let dst = Engine.Metrics.create () in
          List.iter
            (fun v ->
              let src = Engine.Metrics.create () in
              Engine.Metrics.set (Engine.Metrics.gauge src "hw") v;
              Engine.Metrics.merge ~into:dst src)
            order;
          Engine.Metrics.gauge_value (Engine.Metrics.gauge dst "hw")
        in
        check (Alcotest.float 1e-9) "ascending" 9. (merged [ 1.; 5.; 9. ]);
        check (Alcotest.float 1e-9) "descending" 9. (merged [ 9.; 5.; 1. ]));
    tc "Sum accumulates worker deltas" (fun () ->
        let dst = Engine.Metrics.create () in
        List.iter
          (fun v ->
            let src = Engine.Metrics.create () in
            Engine.Metrics.set
              (Engine.Metrics.gauge ~policy:Engine.Metrics.Sum src "d")
              v;
            Engine.Metrics.merge ~into:dst src)
          [ 2.; 3.; 4. ];
        check (Alcotest.float 1e-9) "sum" 9.
          (Engine.Metrics.gauge_value (Engine.Metrics.gauge dst "d"));
        (* the destination's policy governs: it was created on first
           merge with the source's policy *)
        check Alcotest.bool "policy propagated" true
          (Engine.Metrics.gauge_policy (Engine.Metrics.gauge dst "d")
          = Engine.Metrics.Sum));
    tc "Last takes the most recent merge" (fun () ->
        let dst = Engine.Metrics.create () in
        List.iter
          (fun v ->
            let src = Engine.Metrics.create () in
            Engine.Metrics.set
              (Engine.Metrics.gauge ~policy:Engine.Metrics.Last src "l")
              v;
            Engine.Metrics.merge ~into:dst src)
          [ 7.; 3. ];
        check (Alcotest.float 1e-9) "last" 3.
          (Engine.Metrics.gauge_value (Engine.Metrics.gauge dst "l")));
  ]

(* ------------------------------------------------------------------ *)
(* Chrome trace                                                        *)
(* ------------------------------------------------------------------ *)

let trace_tests =
  [
    tc "span instances render as golden Chrome trace JSON" (fun () ->
        let ctx = Engine.Ctx.create ~clock:(fake_clock ()) () in
        let tr = Engine.Ctx.enable_trace ~tid:7 ctx in
        Engine.Trace.label_tid tr ~tid:7 ~label:"worker-7";
        ignore (Engine.Span.with_ ctx ~name:"compile.opt" (fun () -> 42));
        let lines = Engine.Trace.to_chrome_lines ~pid:1 tr in
        let expected =
          [
            "[";
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"metamut\"}},";
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":7,\"args\":{\"name\":\"worker-7\"}},";
            "{\"name\":\"compile.opt\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":7,\"ts\":1000.000,\"dur\":1000.000}";
            "]";
          ]
        in
        check (Alcotest.list Alcotest.string) "golden" expected lines);
    tc "trace JSON escapes span names" (fun () ->
        let tr = Engine.Trace.create () in
        Engine.Trace.record tr ~name:"a\"b\\c" ~ts_ns:0L ~dur_ns:1L;
        let s = Engine.Trace.to_chrome_string tr in
        check Alcotest.bool "escaped quote" true
          (is_infix ~affix:{|a\"b\\c|} s));
    tc "merge retags worker spans under the cell tid" (fun () ->
        let main = Engine.Trace.create ~tid:0 () in
        let worker = Engine.Trace.create ~tid:3 () in
        Engine.Trace.record worker ~name:"w" ~ts_ns:5L ~dur_ns:6L;
        Engine.Trace.record main ~name:"m" ~ts_ns:1L ~dur_ns:2L;
        Engine.Trace.merge ~into:main ~tid:42 worker;
        let tids =
          List.map (fun s -> s.Engine.Trace.sr_tid) (Engine.Trace.spans main)
        in
        check (Alcotest.list Alcotest.int) "tids" [ 0; 42 ] tids);
    tc "set_tid re-tags subsequent spans (sequential campaign)" (fun () ->
        let tr = Engine.Trace.create ~tid:1 () in
        Engine.Trace.record tr ~name:"a" ~ts_ns:0L ~dur_ns:1L;
        Engine.Trace.set_tid tr 2;
        Engine.Trace.record tr ~name:"b" ~ts_ns:0L ~dur_ns:1L;
        let tids =
          List.map (fun s -> s.Engine.Trace.sr_tid) (Engine.Trace.spans tr)
        in
        check (Alcotest.list Alcotest.int) "tids" [ 1; 2 ] tids);
  ]

(* ------------------------------------------------------------------ *)
(* Prometheus / JSON exporters                                         *)
(* ------------------------------------------------------------------ *)

(* A minimal parser for the Prometheus text exposition format: returns
   (name, labels-part, value) triples for sample lines. *)
let parse_prom text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> l <> "" && not (String.starts_with ~prefix:"#" l))
  |> List.map (fun l ->
         match String.rindex_opt l ' ' with
         | None -> Alcotest.fail ("malformed sample line: " ^ l)
         | Some i ->
           let key = String.sub l 0 i in
           let value =
             float_of_string (String.sub l (i + 1) (String.length l - i - 1))
           in
           (key, value))

let golden_registry () =
  let m = Engine.Metrics.create () in
  Engine.Metrics.incr ~by:12 (Engine.Metrics.counter m "mucfuzz.accept.X");
  Engine.Metrics.set (Engine.Metrics.gauge m "gc.heap_words") 4096.;
  let h = Engine.Metrics.histogram ~edges:[| 1.; 10. |] m "lat" in
  List.iter (Engine.Metrics.observe h) [ 0.5; 5.; 50. ];
  m

let exporter_tests =
  [
    tc "prometheus text is golden for a known registry" (fun () ->
        let text =
          Engine.Telemetry.prometheus_of_snapshot
            (Engine.Metrics.snapshot (golden_registry ()))
        in
        let expected =
          String.concat "\n"
            [
              "# TYPE metamut_gc_heap_words gauge";
              "metamut_gc_heap_words 4096";
              "# TYPE metamut_lat histogram";
              "metamut_lat_bucket{le=\"1\"} 1";
              "metamut_lat_bucket{le=\"10\"} 2";
              "metamut_lat_bucket{le=\"+Inf\"} 3";
              "metamut_lat_sum 55.5";
              "metamut_lat_count 3";
              "# TYPE metamut_mucfuzz_accept_X counter";
              "metamut_mucfuzz_accept_X 12";
              "";
            ]
        in
        check Alcotest.string "golden" expected text);
    tc "prometheus samples round-trip through a parser" (fun () ->
        let samples =
          parse_prom
            (Engine.Telemetry.prometheus_of_snapshot
               (Engine.Metrics.snapshot (golden_registry ())))
        in
        let get k = List.assoc k samples in
        check (Alcotest.float 1e-9) "counter" 12.
          (get "metamut_mucfuzz_accept_X");
        check (Alcotest.float 1e-9) "gauge" 4096. (get "metamut_gc_heap_words");
        (* histogram buckets are cumulative and end at +Inf = count *)
        check Alcotest.bool "buckets monotone" true
          (get "metamut_lat_bucket{le=\"1\"}"
           <= get "metamut_lat_bucket{le=\"10\"}"
          && get "metamut_lat_bucket{le=\"10\"}"
             <= get "metamut_lat_bucket{le=\"+Inf\"}");
        check (Alcotest.float 1e-9) "inf bucket = count" (get "metamut_lat_count")
          (get "metamut_lat_bucket{le=\"+Inf\"}"));
    tc "prom_name sanitizes to the exposition charset" (fun () ->
        check Alcotest.string "dots and dashes" "metamut_a_b_c_1"
          (Engine.Telemetry.prom_name "a.b-c 1"));
    tc "json snapshot is golden for a known registry" (fun () ->
        let json =
          Engine.Telemetry.json_of_snapshot
            (Engine.Metrics.snapshot (golden_registry ()))
        in
        let expected =
          String.concat "\n"
            [
              "{";
              "  \"counters\": {";
              "    \"mucfuzz.accept.X\": 12";
              "  },";
              "  \"gauges\": {";
              "    \"gc.heap_words\": 4096";
              "  },";
              "  \"histograms\": {";
              "    \"lat\": {\"edges\": [1,10], \"counts\": [1,1,1], \"sum\": 55.5, \"total\": 3, \"p50\": 5.5, \"p95\": 10}";
              "  }";
              "}";
              "";
            ]
        in
        check Alcotest.string "golden" expected json);
    tc "deterministic_snapshot strips span/gc/telemetry families" (fun () ->
        let m = Engine.Metrics.create () in
        Engine.Metrics.incr (Engine.Metrics.counter m "compile.total");
        Engine.Metrics.incr (Engine.Metrics.counter m "telemetry.flushes");
        Engine.Metrics.set (Engine.Metrics.gauge m "gc.heap_words") 1.;
        ignore (Engine.Metrics.histogram m "span.compile.opt");
        let names = List.map fst (Engine.Telemetry.deterministic_snapshot m) in
        check (Alcotest.list Alcotest.string) "only deterministic families"
          [ "compile.total" ] names);
  ]

(* ------------------------------------------------------------------ *)
(* GC probe                                                            *)
(* ------------------------------------------------------------------ *)

let probe_tests =
  [
    tc "probe samples per batch and on demand" (fun () ->
        let m = Engine.Metrics.create () in
        let p = Engine.Probe.create ~batch:2 m in
        (* allocate visibly between compiles *)
        let sink = ref [] in
        for i = 1 to 3 do
          sink := List.init 1000 (fun j -> (i * j, string_of_int j)) :: !sink;
          Engine.Probe.on_compile p
        done;
        (* 3 compiles at batch 2: one automatic sample, one partial *)
        Engine.Probe.sample p;
        (match
           List.assoc_opt "gc.minor_words_per_compile" (Engine.Metrics.snapshot m)
         with
        | Some (Engine.Metrics.Histogram { total; _ }) ->
          check Alcotest.int "two samples" 2 total
        | _ -> Alcotest.fail "missing histogram");
        check Alcotest.bool "allocation observed" true
          (Engine.Probe.minor_words_mean p > 0.);
        ignore !sink);
    tc "probe instruments never include counters" (fun () ->
        (* the parallel-merge invariance test compares Counter-filtered
           snapshots; GC readings must stay out of that universe *)
        let m = Engine.Metrics.create () in
        let p = Engine.Probe.create ~batch:1 m in
        Engine.Probe.on_compile p;
        List.iter
          (fun (name, v) ->
            if String.starts_with ~prefix:"gc." name then
              match v with
              | Engine.Metrics.Counter _ ->
                Alcotest.fail ("gc counter leaked: " ^ name)
              | _ -> ())
          (Engine.Metrics.snapshot m));
  ]

(* ------------------------------------------------------------------ *)
(* Status line                                                         *)
(* ------------------------------------------------------------------ *)

let status_tests =
  [
    tc "status line folds events and detects plateaus" (fun () ->
        let ctx = Engine.Ctx.create ~clock:(fake_clock ()) () in
        let out = Buffer.create 128 in
        let st =
          Engine.Status.attach
            ~out:(Buffer.add_string out)
            ~interval_ns:0L ~label:"t" ctx
        in
        for _ = 1 to 5 do
          Engine.Ctx.emit ctx
            (Engine.Event.Compile_finished
               (Engine.Event.Compiled_ok, Engine.Event.Backend))
        done;
        Engine.Ctx.emit ctx
          (Engine.Event.Crash_found
             { key = "k"; stage = Engine.Event.Opt; iteration = 3 });
        Engine.Ctx.emit ctx
          (Engine.Event.Coverage_sampled { iteration = 10; covered = 100 });
        let line = Engine.Status.line st in
        check Alcotest.bool "execs" true
          (is_infix ~affix:"5 execs" line);
        check Alcotest.bool "crashes" true
          (is_infix ~affix:"1 crashes" line);
        check Alcotest.bool "edges" true
          (is_infix ~affix:"100 edges" line);
        check Alcotest.bool "no plateau yet" false
          (is_infix ~affix:"plateau" line);
        (* four flat samples in a row *)
        for i = 11 to 14 do
          Engine.Ctx.emit ctx
            (Engine.Event.Coverage_sampled { iteration = i; covered = 100 })
        done;
        check Alcotest.bool "plateau flagged" true
          (is_infix ~affix:"plateau x4" (Engine.Status.line st));
        (* fresh coverage resets the streak *)
        Engine.Ctx.emit ctx
          (Engine.Event.Coverage_sampled { iteration = 15; covered = 101 });
        check Alcotest.bool "plateau cleared" false
          (is_infix ~affix:"plateau" (Engine.Status.line st));
        Engine.Status.finish st;
        (* detached: further events no longer count *)
        let n = Buffer.length out in
        Engine.Ctx.emit ctx
          (Engine.Event.Compile_finished
             (Engine.Event.Compiled_ok, Engine.Event.Backend));
        check Alcotest.int "no output after finish" n (Buffer.length out));
  ]

(* ------------------------------------------------------------------ *)
(* Final trend sample (the tail is never truncated)                    *)
(* ------------------------------------------------------------------ *)

let run_mucfuzz ~sample_every ~iterations =
  let seeds = Fuzzing.Seeds.corpus ~n:8 (Cparse.Rng.create 3) in
  Fuzzing.Mucfuzz.run
    ~cfg:
      {
        (Fuzzing.Mucfuzz.default_config ()) with
        Fuzzing.Mucfuzz.max_attempts_per_iteration = 4;
        sample_every;
      }
    ~rng:(Cparse.Rng.create 11) ~compiler:Simcomp.Compiler.Gcc ~seeds
    ~iterations ~name:"t" ()

let trend_tail_tests =
  [
    tc "trend ends at the final iteration when the cadence misses it"
      (fun () ->
        let r = run_mucfuzz ~sample_every:7 ~iterations:10 in
        match List.rev r.Fuzzing.Fuzz_result.coverage_trend with
        | (last, _) :: _ -> check Alcotest.int "tail iteration" 10 last
        | [] -> Alcotest.fail "empty trend");
    tc "no duplicate sample when the cadence already landed there"
      (fun () ->
        let r = run_mucfuzz ~sample_every:5 ~iterations:10 in
        let iters = List.map fst r.Fuzzing.Fuzz_result.coverage_trend in
        check
          (Alcotest.list Alcotest.int)
          "each iteration sampled once"
          (List.sort_uniq compare iters)
          iters;
        check Alcotest.int "tail iteration" 10
          (List.nth iters (List.length iters - 1)));
    tc "baseline trends end at the final iteration too" (fun () ->
        let seeds = Fuzzing.Seeds.corpus ~n:6 (Cparse.Rng.create 3) in
        let r =
          Fuzzing.Baselines.run_aflpp ~rng:(Cparse.Rng.create 4)
            ~compiler:Simcomp.Compiler.Gcc ~seeds ~iterations:10
            ~sample_every:7 ()
        in
        match List.rev r.Fuzzing.Fuzz_result.coverage_trend with
        | (last, _) :: _ -> check Alcotest.int "tail iteration" 10 last
        | [] -> Alcotest.fail "empty trend");
  ]

(* ------------------------------------------------------------------ *)
(* Telemetry attach / flush / finalize and jobs:N invariance           *)
(* ------------------------------------------------------------------ *)

let temp_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  dir

let telemetry_tests =
  [
    tc "attach/flush/finalize write the artifact files" (fun () ->
        let dir = temp_dir "metamut-tel-test" in
        let ctx = Engine.Ctx.create ~clock:(fake_clock ()) () in
        let t = Engine.Telemetry.attach ~flush_every:1 ~dir ctx in
        ignore (Engine.Span.with_ ctx ~name:"x" (fun () -> ()));
        Engine.Ctx.emit ctx
          (Engine.Event.Coverage_sampled { iteration = 1; covered = 5 });
        Engine.Telemetry.finalize ~report:"# hi\n" t;
        let read f =
          let ic = open_in_bin (Filename.concat dir f) in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          s
        in
        let trace = read Engine.Telemetry.trace_file in
        check Alcotest.bool "trace is a JSON array" true
          (String.starts_with ~prefix:"[\n" trace
          && String.ends_with ~suffix:"]\n" trace);
        check Alcotest.bool "prom has the span histogram" true
          (is_infix ~affix:"metamut_span_x"
             (read Engine.Telemetry.prom_file));
        check Alcotest.bool "json has sections" true
          (is_infix ~affix:"\"histograms\""
             (read Engine.Telemetry.json_file));
        check Alcotest.string "report written" "# hi\n"
          (read Engine.Telemetry.report_file);
        (* the periodic sink is gone after finalize: further samples no
           longer bump the flush counter *)
        let flushes () =
          Engine.Metrics.counter_value
            (Engine.Metrics.counter ctx.Engine.Ctx.metrics "telemetry.flushes")
        in
        let before = flushes () in
        Engine.Ctx.emit ctx
          (Engine.Event.Coverage_sampled { iteration = 2; covered = 6 });
        check Alcotest.int "sink detached" before (flushes ()));
    tc "merged telemetry is identical at jobs:1 and jobs:4" (fun () ->
        let cfg =
          {
            Fuzzing.Campaign.default_config with
            iterations = 10;
            seeds = 8;
            sample_every = 4;
            max_attempts = 4;
          }
        in
        let snapshot jobs =
          let engine = Engine.Ctx.create () in
          ignore (Engine.Ctx.enable_trace engine);
          ignore (Engine.Ctx.enable_probe engine);
          ignore
            (Fuzzing.Campaign.run
               ~cfg:{ cfg with Fuzzing.Campaign.jobs }
               ~engine ());
          Engine.Telemetry.deterministic_snapshot engine.Engine.Ctx.metrics
        in
        check Alcotest.bool "identical deterministic snapshots" true
          (snapshot 1 = snapshot 4));
    tc "campaign report renders the load-bearing sections" (fun () ->
        let cfg =
          {
            Fuzzing.Campaign.default_config with
            iterations = 8;
            seeds = 6;
            sample_every = 4;
            max_attempts = 4;
            jobs = 1;
          }
        in
        let engine = Engine.Ctx.create () in
        let t =
          Fuzzing.Campaign.run ~cfg
            ~fuzzers:[ Fuzzing.Campaign.MuCFuzz_u ]
            ~engine ()
        in
        let md = Fuzzing.Run_report.campaign ~engine t in
        List.iter
          (fun affix ->
            check Alcotest.bool affix true
              (is_infix ~affix md))
          [
            "# Campaign report";
            "## Run summary";
            "## Coverage trend";
            "## Per-mutator outcomes";
            "## Fault & retry recovery";
            "uCFuzz.u-GCC";
          ]);
  ]

let () =
  Alcotest.run "telemetry"
    [
      ("gauge-policy", gauge_policy_tests);
      ("trace", trace_tests);
      ("exporters", exporter_tests);
      ("probe", probe_tests);
      ("status", status_tests);
      ("trend-tail", trend_tail_tests);
      ("telemetry", telemetry_tests);
    ]
