(* Tests for the telemetry export layer: gauge merge policies, the
   Chrome trace buffer and its JSON rendering (golden, under a fake
   clock), Prometheus/JSON snapshot exporters (golden + round-trip
   parse), GC probes, the live status line, the final-trend-sample rule,
   and jobs:N invariance of the deterministic telemetry snapshot. *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let is_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* A deterministic nanosecond clock: +1ms per reading. *)
let fake_clock () =
  let t = ref 0L in
  fun () ->
    t := Int64.add !t 1_000_000L;
    !t

(* ------------------------------------------------------------------ *)
(* Gauge merge policies (Metrics.merge used to be last-writer-wins)     *)
(* ------------------------------------------------------------------ *)

let gauge_policy_tests =
  [
    tc "Max keeps the high-water mark across merge order" (fun () ->
        let merged order =
          let dst = Engine.Metrics.create () in
          List.iter
            (fun v ->
              let src = Engine.Metrics.create () in
              Engine.Metrics.set (Engine.Metrics.gauge src "hw") v;
              Engine.Metrics.merge ~into:dst src)
            order;
          Engine.Metrics.gauge_value (Engine.Metrics.gauge dst "hw")
        in
        check (Alcotest.float 1e-9) "ascending" 9. (merged [ 1.; 5.; 9. ]);
        check (Alcotest.float 1e-9) "descending" 9. (merged [ 9.; 5.; 1. ]));
    tc "Sum accumulates worker deltas" (fun () ->
        let dst = Engine.Metrics.create () in
        List.iter
          (fun v ->
            let src = Engine.Metrics.create () in
            Engine.Metrics.set
              (Engine.Metrics.gauge ~policy:Engine.Metrics.Sum src "d")
              v;
            Engine.Metrics.merge ~into:dst src)
          [ 2.; 3.; 4. ];
        check (Alcotest.float 1e-9) "sum" 9.
          (Engine.Metrics.gauge_value (Engine.Metrics.gauge dst "d"));
        (* the destination's policy governs: it was created on first
           merge with the source's policy *)
        check Alcotest.bool "policy propagated" true
          (Engine.Metrics.gauge_policy (Engine.Metrics.gauge dst "d")
          = Engine.Metrics.Sum));
    tc "Last takes the most recent merge" (fun () ->
        let dst = Engine.Metrics.create () in
        List.iter
          (fun v ->
            let src = Engine.Metrics.create () in
            Engine.Metrics.set
              (Engine.Metrics.gauge ~policy:Engine.Metrics.Last src "l")
              v;
            Engine.Metrics.merge ~into:dst src)
          [ 7.; 3. ];
        check (Alcotest.float 1e-9) "last" 3.
          (Engine.Metrics.gauge_value (Engine.Metrics.gauge dst "l")));
  ]

(* ------------------------------------------------------------------ *)
(* Chrome trace                                                        *)
(* ------------------------------------------------------------------ *)

let trace_tests =
  [
    tc "span instances render as golden Chrome trace JSON" (fun () ->
        let ctx = Engine.Ctx.create ~clock:(fake_clock ()) () in
        let tr = Engine.Ctx.enable_trace ~tid:7 ctx in
        Engine.Trace.label_tid tr ~tid:7 ~label:"worker-7";
        ignore (Engine.Span.with_ ctx ~name:"compile.opt" (fun () -> 42));
        let lines = Engine.Trace.to_chrome_lines ~pid:1 tr in
        let expected =
          [
            "[";
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"metamut\"}},";
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":7,\"args\":{\"name\":\"worker-7\"}},";
            "{\"name\":\"compile.opt\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":7,\"ts\":1000.000,\"dur\":1000.000}";
            "]";
          ]
        in
        check (Alcotest.list Alcotest.string) "golden" expected lines);
    tc "trace JSON escapes span names" (fun () ->
        let tr = Engine.Trace.create () in
        Engine.Trace.record tr ~name:"a\"b\\c" ~ts_ns:0L ~dur_ns:1L;
        let s = Engine.Trace.to_chrome_string tr in
        check Alcotest.bool "escaped quote" true
          (is_infix ~affix:{|a\"b\\c|} s));
    tc "merge retags worker spans under the cell tid" (fun () ->
        let main = Engine.Trace.create ~tid:0 () in
        let worker = Engine.Trace.create ~tid:3 () in
        Engine.Trace.record worker ~name:"w" ~ts_ns:5L ~dur_ns:6L;
        Engine.Trace.record main ~name:"m" ~ts_ns:1L ~dur_ns:2L;
        Engine.Trace.merge ~into:main ~tid:42 worker;
        let tids =
          List.map (fun s -> s.Engine.Trace.sr_tid) (Engine.Trace.spans main)
        in
        check (Alcotest.list Alcotest.int) "tids" [ 0; 42 ] tids);
    tc "set_tid re-tags subsequent spans (sequential campaign)" (fun () ->
        let tr = Engine.Trace.create ~tid:1 () in
        Engine.Trace.record tr ~name:"a" ~ts_ns:0L ~dur_ns:1L;
        Engine.Trace.set_tid tr 2;
        Engine.Trace.record tr ~name:"b" ~ts_ns:0L ~dur_ns:1L;
        let tids =
          List.map (fun s -> s.Engine.Trace.sr_tid) (Engine.Trace.spans tr)
        in
        check (Alcotest.list Alcotest.int) "tids" [ 1; 2 ] tids);
  ]

(* ------------------------------------------------------------------ *)
(* Prometheus / JSON exporters                                         *)
(* ------------------------------------------------------------------ *)

(* A minimal parser for the Prometheus text exposition format: returns
   (name, labels-part, value) triples for sample lines. *)
let parse_prom text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> l <> "" && not (String.starts_with ~prefix:"#" l))
  |> List.map (fun l ->
         match String.rindex_opt l ' ' with
         | None -> Alcotest.fail ("malformed sample line: " ^ l)
         | Some i ->
           let key = String.sub l 0 i in
           let value =
             float_of_string (String.sub l (i + 1) (String.length l - i - 1))
           in
           (key, value))

let golden_registry () =
  let m = Engine.Metrics.create () in
  Engine.Metrics.incr ~by:12 (Engine.Metrics.counter m "mucfuzz.accept.X");
  Engine.Metrics.set (Engine.Metrics.gauge m "gc.heap_words") 4096.;
  let h = Engine.Metrics.histogram ~edges:[| 1.; 10. |] m "lat" in
  List.iter (Engine.Metrics.observe h) [ 0.5; 5.; 50. ];
  m

let exporter_tests =
  [
    tc "prometheus text is golden for a known registry" (fun () ->
        let text =
          Engine.Telemetry.prometheus_of_snapshot
            (Engine.Metrics.snapshot (golden_registry ()))
        in
        let expected =
          String.concat "\n"
            [
              "# HELP metamut_gc_heap_words GC probe reading \
               (machine-dependent)";
              "# TYPE metamut_gc_heap_words gauge";
              "metamut_gc_heap_words 4096";
              "# HELP metamut_lat metamut engine metric";
              "# TYPE metamut_lat histogram";
              "metamut_lat_bucket{le=\"1\"} 1";
              "metamut_lat_bucket{le=\"10\"} 2";
              "metamut_lat_bucket{le=\"+Inf\"} 3";
              "metamut_lat_sum 55.5";
              "metamut_lat_count 3";
              "# HELP metamut_mucfuzz_accept_X muCFuzz loop tallies \
               (aggregate and per-mutator)";
              "# TYPE metamut_mucfuzz_accept_X counter";
              "metamut_mucfuzz_accept_X 12";
              "";
            ]
        in
        check Alcotest.string "golden" expected text);
    tc "prometheus samples round-trip through a parser" (fun () ->
        let samples =
          parse_prom
            (Engine.Telemetry.prometheus_of_snapshot
               (Engine.Metrics.snapshot (golden_registry ())))
        in
        let get k = List.assoc k samples in
        check (Alcotest.float 1e-9) "counter" 12.
          (get "metamut_mucfuzz_accept_X");
        check (Alcotest.float 1e-9) "gauge" 4096. (get "metamut_gc_heap_words");
        (* histogram buckets are cumulative and end at +Inf = count *)
        check Alcotest.bool "buckets monotone" true
          (get "metamut_lat_bucket{le=\"1\"}"
           <= get "metamut_lat_bucket{le=\"10\"}"
          && get "metamut_lat_bucket{le=\"10\"}"
             <= get "metamut_lat_bucket{le=\"+Inf\"}");
        check (Alcotest.float 1e-9) "inf bucket = count" (get "metamut_lat_count")
          (get "metamut_lat_bucket{le=\"+Inf\"}"));
    tc "prom_name sanitizes to the exposition charset" (fun () ->
        check Alcotest.string "dots and dashes" "metamut_a_b_c_1"
          (Engine.Telemetry.prom_name "a.b-c 1"));
    tc "json snapshot is golden for a known registry" (fun () ->
        let json =
          Engine.Telemetry.json_of_snapshot
            (Engine.Metrics.snapshot (golden_registry ()))
        in
        let expected =
          String.concat "\n"
            [
              "{";
              "  \"counters\": {";
              "    \"mucfuzz.accept.X\": 12";
              "  },";
              "  \"gauges\": {";
              "    \"gc.heap_words\": 4096";
              "  },";
              "  \"histograms\": {";
              "    \"lat\": {\"edges\": [1,10], \"counts\": [1,1,1], \"sum\": 55.5, \"total\": 3, \"p50\": 5.5, \"p95\": 10}";
              "  }";
              "}";
              "";
            ]
        in
        check Alcotest.string "golden" expected json);
    tc "deterministic_snapshot strips span/gc/telemetry families" (fun () ->
        let m = Engine.Metrics.create () in
        Engine.Metrics.incr (Engine.Metrics.counter m "compile.total");
        Engine.Metrics.incr (Engine.Metrics.counter m "telemetry.flushes");
        Engine.Metrics.set (Engine.Metrics.gauge m "gc.heap_words") 1.;
        ignore (Engine.Metrics.histogram m "span.compile.opt");
        let names = List.map fst (Engine.Telemetry.deterministic_snapshot m) in
        check (Alcotest.list Alcotest.string) "only deterministic families"
          [ "compile.total" ] names);
  ]

(* ------------------------------------------------------------------ *)
(* GC probe                                                            *)
(* ------------------------------------------------------------------ *)

let probe_tests =
  [
    tc "probe samples per batch and on demand" (fun () ->
        let m = Engine.Metrics.create () in
        let p = Engine.Probe.create ~batch:2 m in
        (* allocate visibly between compiles *)
        let sink = ref [] in
        for i = 1 to 3 do
          sink := List.init 1000 (fun j -> (i * j, string_of_int j)) :: !sink;
          Engine.Probe.on_compile p
        done;
        (* 3 compiles at batch 2: one automatic sample, one partial *)
        Engine.Probe.sample p;
        (match
           List.assoc_opt "gc.minor_words_per_compile" (Engine.Metrics.snapshot m)
         with
        | Some (Engine.Metrics.Histogram { total; _ }) ->
          check Alcotest.int "two samples" 2 total
        | _ -> Alcotest.fail "missing histogram");
        check Alcotest.bool "allocation observed" true
          (Engine.Probe.minor_words_mean p > 0.);
        ignore !sink);
    tc "probe instruments never include counters" (fun () ->
        (* the parallel-merge invariance test compares Counter-filtered
           snapshots; GC readings must stay out of that universe *)
        let m = Engine.Metrics.create () in
        let p = Engine.Probe.create ~batch:1 m in
        Engine.Probe.on_compile p;
        List.iter
          (fun (name, v) ->
            if String.starts_with ~prefix:"gc." name then
              match v with
              | Engine.Metrics.Counter _ ->
                Alcotest.fail ("gc counter leaked: " ^ name)
              | _ -> ())
          (Engine.Metrics.snapshot m));
  ]

(* ------------------------------------------------------------------ *)
(* Status line                                                         *)
(* ------------------------------------------------------------------ *)

let status_tests =
  [
    tc "status line folds events and detects plateaus" (fun () ->
        let ctx = Engine.Ctx.create ~clock:(fake_clock ()) () in
        let out = Buffer.create 128 in
        let st =
          Engine.Status.attach
            ~out:(Buffer.add_string out)
            ~interval_ns:0L ~label:"t" ctx
        in
        for _ = 1 to 5 do
          Engine.Ctx.emit ctx
            (Engine.Event.Compile_finished
               (Engine.Event.Compiled_ok, Engine.Event.Backend))
        done;
        Engine.Ctx.emit ctx
          (Engine.Event.Crash_found
             { key = "k"; stage = Engine.Event.Opt; iteration = 3 });
        Engine.Ctx.emit ctx
          (Engine.Event.Coverage_sampled { iteration = 10; covered = 100 });
        let line = Engine.Status.line st in
        check Alcotest.bool "execs" true
          (is_infix ~affix:"5 execs" line);
        check Alcotest.bool "crashes" true
          (is_infix ~affix:"1 crashes" line);
        check Alcotest.bool "edges" true
          (is_infix ~affix:"100 edges" line);
        check Alcotest.bool "no plateau yet" false
          (is_infix ~affix:"plateau" line);
        (* four flat samples in a row *)
        for i = 11 to 14 do
          Engine.Ctx.emit ctx
            (Engine.Event.Coverage_sampled { iteration = i; covered = 100 })
        done;
        check Alcotest.bool "plateau flagged" true
          (is_infix ~affix:"plateau x4" (Engine.Status.line st));
        (* fresh coverage resets the streak *)
        Engine.Ctx.emit ctx
          (Engine.Event.Coverage_sampled { iteration = 15; covered = 101 });
        check Alcotest.bool "plateau cleared" false
          (is_infix ~affix:"plateau" (Engine.Status.line st));
        Engine.Status.finish st;
        (* detached: further events no longer count *)
        let n = Buffer.length out in
        Engine.Ctx.emit ctx
          (Engine.Event.Compile_finished
             (Engine.Event.Compiled_ok, Engine.Event.Backend));
        check Alcotest.int "no output after finish" n (Buffer.length out));
  ]

(* ------------------------------------------------------------------ *)
(* Final trend sample (the tail is never truncated)                    *)
(* ------------------------------------------------------------------ *)

let run_mucfuzz ~sample_every ~iterations =
  let seeds = Fuzzing.Seeds.corpus ~n:8 (Cparse.Rng.create 3) in
  Fuzzing.Mucfuzz.run
    ~cfg:
      {
        (Fuzzing.Mucfuzz.default_config ()) with
        Fuzzing.Mucfuzz.max_attempts_per_iteration = 4;
        sample_every;
      }
    ~rng:(Cparse.Rng.create 11) ~compiler:Simcomp.Compiler.Gcc ~seeds
    ~iterations ~name:"t" ()

let trend_tail_tests =
  [
    tc "trend ends at the final iteration when the cadence misses it"
      (fun () ->
        let r = run_mucfuzz ~sample_every:7 ~iterations:10 in
        match List.rev r.Fuzzing.Fuzz_result.coverage_trend with
        | (last, _) :: _ -> check Alcotest.int "tail iteration" 10 last
        | [] -> Alcotest.fail "empty trend");
    tc "no duplicate sample when the cadence already landed there"
      (fun () ->
        let r = run_mucfuzz ~sample_every:5 ~iterations:10 in
        let iters = List.map fst r.Fuzzing.Fuzz_result.coverage_trend in
        check
          (Alcotest.list Alcotest.int)
          "each iteration sampled once"
          (List.sort_uniq compare iters)
          iters;
        check Alcotest.int "tail iteration" 10
          (List.nth iters (List.length iters - 1)));
    tc "baseline trends end at the final iteration too" (fun () ->
        let seeds = Fuzzing.Seeds.corpus ~n:6 (Cparse.Rng.create 3) in
        let r =
          Fuzzing.Baselines.run_aflpp ~rng:(Cparse.Rng.create 4)
            ~compiler:Simcomp.Compiler.Gcc ~seeds ~iterations:10
            ~sample_every:7 ()
        in
        match List.rev r.Fuzzing.Fuzz_result.coverage_trend with
        | (last, _) :: _ -> check Alcotest.int "tail iteration" 10 last
        | [] -> Alcotest.fail "empty trend");
  ]

(* ------------------------------------------------------------------ *)
(* Telemetry attach / flush / finalize and jobs:N invariance           *)
(* ------------------------------------------------------------------ *)

let temp_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  dir

let telemetry_tests =
  [
    tc "attach/flush/finalize write the artifact files" (fun () ->
        let dir = temp_dir "metamut-tel-test" in
        let ctx = Engine.Ctx.create ~clock:(fake_clock ()) () in
        let t = Engine.Telemetry.attach ~flush_every:1 ~dir ctx in
        ignore (Engine.Span.with_ ctx ~name:"x" (fun () -> ()));
        Engine.Ctx.emit ctx
          (Engine.Event.Coverage_sampled { iteration = 1; covered = 5 });
        Engine.Telemetry.finalize ~report:"# hi\n" t;
        let read f =
          let ic = open_in_bin (Filename.concat dir f) in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          s
        in
        let trace = read Engine.Telemetry.trace_file in
        check Alcotest.bool "trace is a JSON array" true
          (String.starts_with ~prefix:"[\n" trace
          && String.ends_with ~suffix:"]\n" trace);
        check Alcotest.bool "prom has the span histogram" true
          (is_infix ~affix:"metamut_span_x"
             (read Engine.Telemetry.prom_file));
        check Alcotest.bool "json has sections" true
          (is_infix ~affix:"\"histograms\""
             (read Engine.Telemetry.json_file));
        check Alcotest.string "report written" "# hi\n"
          (read Engine.Telemetry.report_file);
        (* the periodic sink is gone after finalize: further samples no
           longer bump the flush counter *)
        let flushes () =
          Engine.Metrics.counter_value
            (Engine.Metrics.counter ctx.Engine.Ctx.metrics "telemetry.flushes")
        in
        let before = flushes () in
        Engine.Ctx.emit ctx
          (Engine.Event.Coverage_sampled { iteration = 2; covered = 6 });
        check Alcotest.int "sink detached" before (flushes ()));
    tc "merged telemetry is identical at jobs:1 and jobs:4" (fun () ->
        let cfg =
          {
            Fuzzing.Campaign.default_config with
            iterations = 10;
            seeds = 8;
            sample_every = 4;
            max_attempts = 4;
          }
        in
        let snapshot jobs =
          let engine = Engine.Ctx.create () in
          ignore (Engine.Ctx.enable_trace engine);
          ignore (Engine.Ctx.enable_probe engine);
          ignore
            (Fuzzing.Campaign.run
               ~cfg:{ cfg with Fuzzing.Campaign.jobs }
               ~engine ());
          Engine.Telemetry.deterministic_snapshot engine.Engine.Ctx.metrics
        in
        check Alcotest.bool "identical deterministic snapshots" true
          (snapshot 1 = snapshot 4));
    tc "campaign report renders the load-bearing sections" (fun () ->
        let cfg =
          {
            Fuzzing.Campaign.default_config with
            iterations = 8;
            seeds = 6;
            sample_every = 4;
            max_attempts = 4;
            jobs = 1;
          }
        in
        let engine = Engine.Ctx.create () in
        let t =
          Fuzzing.Campaign.run ~cfg
            ~fuzzers:[ Fuzzing.Campaign.MuCFuzz_u ]
            ~engine ()
        in
        let md = Fuzzing.Run_report.campaign ~engine t in
        List.iter
          (fun affix ->
            check Alcotest.bool affix true
              (is_infix ~affix md))
          [
            "# Campaign report";
            "## Run summary";
            "## Coverage trend";
            "## Per-mutator outcomes";
            "## Fault & retry recovery";
            "uCFuzz.u-GCC";
          ]);
  ]

(* ------------------------------------------------------------------ *)
(* Folded stacks (flamegraph export) and per-span self time            *)
(* ------------------------------------------------------------------ *)

let folded_tests =
  [
    tc "fold_self reconstructs nesting; to_folded is golden" (fun () ->
        let ctx = Engine.Ctx.create ~clock:(fake_clock ()) () in
        ignore (Engine.Ctx.enable_trace ~tid:0 ctx);
        (* compile.opt [1ms..6ms] containing opt.pass.a [2..3] and
           opt.pass.b [4..5]: self times 3ms / 1ms / 1ms *)
        ignore
          (Engine.Span.with_ ctx ~name:"compile.opt" (fun () ->
               ignore (Engine.Span.with_ ctx ~name:"opt.pass.a" (fun () -> ()));
               Engine.Span.with_ ctx ~name:"opt.pass.b" (fun () -> ())));
        let tr = Option.get ctx.Engine.Ctx.trace in
        let folded = Engine.Trace.to_folded tr in
        let expected =
          String.concat "\n"
            [
              "main;compile.opt 3000";
              "main;compile.opt;opt.pass.a 1000";
              "main;compile.opt;opt.pass.b 1000";
              "";
            ]
        in
        check Alcotest.string "folded golden" expected folded);
    tc "per-pass self times sum to the parent span's total" (fun () ->
        let ctx = Engine.Ctx.create ~clock:(fake_clock ()) () in
        ignore (Engine.Ctx.enable_trace ~tid:0 ctx);
        ignore
          (Engine.Span.with_ ctx ~name:"compile.opt" (fun () ->
               ignore (Engine.Span.with_ ctx ~name:"opt.pass.a" (fun () -> ()));
               ignore (Engine.Span.with_ ctx ~name:"opt.pass.b" (fun () -> ()));
               Engine.Span.with_ ctx ~name:"opt.pass.c" (fun () -> ())));
        let tr = Option.get ctx.Engine.Ctx.trace in
        let parent_total =
          List.fold_left
            (fun acc (s : Engine.Trace.span_rec) ->
              if s.Engine.Trace.sr_name = "compile.opt" then
                Int64.add acc s.Engine.Trace.sr_dur_ns
              else acc)
            0L (Engine.Trace.spans tr)
        in
        let self = Engine.Trace.self_time_by_name tr in
        let get n = Option.value ~default:0L (List.assoc_opt n self) in
        let sum =
          List.fold_left Int64.add 0L
            [
              get "compile.opt"; get "opt.pass.a"; get "opt.pass.b";
              get "opt.pass.c";
            ]
        in
        check Alcotest.int64 "self times sum to the parent total"
          parent_total sum);
    tc "siblings on separate tids never nest" (fun () ->
        let tr = Engine.Trace.create () in
        (* same wall-clock window, different threads: each is a root *)
        Engine.Trace.record tr ~name:"a" ~ts_ns:0L ~dur_ns:10_000L;
        Engine.Trace.set_tid tr 3;
        Engine.Trace.record tr ~name:"b" ~ts_ns:0L ~dur_ns:10_000L;
        let paths =
          List.map
            (fun (p, _) -> String.concat ";" p)
            (Engine.Trace.fold_self tr)
        in
        check Alcotest.bool "a under main" true
          (List.mem "main;a" paths);
        check Alcotest.bool "b under tid-3" true
          (List.mem "tid-3;b" paths));
    tc "zero-duration spans are dropped from the folded output" (fun () ->
        let tr = Engine.Trace.create () in
        Engine.Trace.record tr ~name:"instant" ~ts_ns:0L ~dur_ns:100L;
        (* 100ns rounds to 0µs: no line *)
        check Alcotest.string "empty" "" (Engine.Trace.to_folded tr));
  ]

(* ------------------------------------------------------------------ *)
(* Per-mutator yield artifact                                          *)
(* ------------------------------------------------------------------ *)

let yield_tests =
  [
    tc "mutator_yield_json is None without mutator counters" (fun () ->
        let m = Engine.Metrics.create () in
        Engine.Metrics.incr (Engine.Metrics.counter m "compile.total");
        check Alcotest.bool "no artifact" true
          (Engine.Telemetry.mutator_yield_json m = None));
    tc "yield rows join families and sort by fresh edges" (fun () ->
        let m = Engine.Metrics.create () in
        let bump ?(by = 1) name =
          Engine.Metrics.incr ~by (Engine.Metrics.counter m name)
        in
        bump ~by:10 "mucfuzz.attempt.low";
        bump ~by:4 "mucfuzz.accept.low";
        bump ~by:2 "mucfuzz.fresh_edges.low";
        bump ~by:10 "mucfuzz.attempt.high";
        bump ~by:3 "mucfuzz.accept.high";
        bump ~by:9 "mucfuzz.fresh_edges.high";
        (* a mutator that only ever appears in the reject family still
           gets a row (union of suffixes, not just attempts) *)
        bump ~by:5 "mucfuzz.reject.barren";
        match Engine.Telemetry.mutator_yield_json m with
        | None -> Alcotest.fail "expected an artifact"
        | Some json ->
          let hi = ref 0 and lo = ref 0 and barren = ref 0 in
          List.iteri
            (fun i line ->
              if is_infix ~affix:"\"high\"" line then hi := i;
              if is_infix ~affix:"\"low\"" line then lo := i;
              if is_infix ~affix:"\"barren\"" line then barren := i)
            (String.split_on_char '\n' json);
          check Alcotest.bool "high outranks low" true (!hi < !lo);
          check Alcotest.bool "low outranks barren" true (!lo < !barren);
          check Alcotest.bool "fresh field present" true
            (is_infix ~affix:"\"fresh_edges\": 9" json));
  ]

(* ------------------------------------------------------------------ *)
(* Structured log: deterministic rendering                             *)
(* ------------------------------------------------------------------ *)

let log_tests =
  [
    tc "render groups by scope, sorts by phase, assigns seq" (fun () ->
        let lg = Engine.Log.create () in
        (* emission order deliberately interleaves scopes and phases the
           way a pool would: supervision first, bodies later *)
        Engine.Log.record lg ~scope:"unit-b" ~phase:1
          ~level:Engine.Log.Info ~event:"lease.verdict"
          [ ("verdict", "done") ];
        Engine.Log.record lg ~scope:"" ~level:Engine.Log.Info
          ~event:"campaign.start" [];
        Engine.Log.record lg ~scope:"unit-a" ~phase:1
          ~level:Engine.Log.Info ~event:"lease.verdict"
          [ ("verdict", "done") ];
        Engine.Log.record lg ~scope:"unit-a" ~level:Engine.Log.Info
          ~event:"body.step" [ ("n", "1") ];
        let lines =
          Engine.Log.to_json_lines ~scope_order:[ "unit-a"; "unit-b" ] lg
        in
        let expected =
          [
            "{\"seq\":0,\"level\":\"info\",\"scope\":\"\",\"event\":\"campaign.start\"}";
            "{\"seq\":1,\"level\":\"info\",\"scope\":\"unit-a\",\"event\":\"body.step\",\"n\":\"1\"}";
            "{\"seq\":2,\"level\":\"info\",\"scope\":\"unit-a\",\"event\":\"lease.verdict\",\"verdict\":\"done\"}";
            "{\"seq\":3,\"level\":\"info\",\"scope\":\"unit-b\",\"event\":\"lease.verdict\",\"verdict\":\"done\"}";
          ]
        in
        check (Alcotest.list Alcotest.string) "golden lines" expected lines);
    tc "rendered body is emission-interleaving-invariant" (fun () ->
        (* two logs with the same per-scope streams in different global
           interleavings (jobs:1 vs jobs:K) render identically *)
        let a = Engine.Log.create () in
        Engine.Log.record a ~scope:"u1" ~level:Engine.Log.Info ~event:"x" [];
        Engine.Log.record a ~scope:"u2" ~level:Engine.Log.Info ~event:"y" [];
        Engine.Log.record a ~scope:"u1" ~level:Engine.Log.Warn ~event:"z" [];
        let b = Engine.Log.create () in
        Engine.Log.record b ~scope:"u2" ~level:Engine.Log.Info ~event:"y" [];
        Engine.Log.record b ~scope:"u1" ~level:Engine.Log.Info ~event:"x" [];
        Engine.Log.record b ~scope:"u1" ~level:Engine.Log.Warn ~event:"z" [];
        check Alcotest.string "same body"
          (Engine.Log.to_string a) (Engine.Log.to_string b));
    tc "merge stamps the worker's records with the cell scope" (fun () ->
        let worker = Engine.Log.create () in
        Engine.Log.record worker ~level:Engine.Log.Info ~event:"w" [];
        let main = Engine.Log.create () in
        Engine.Log.merge ~into:main ~scope:"cell-1" worker;
        match Engine.Log.records main with
        | [ r ] -> check Alcotest.string "scope" "cell-1" r.Engine.Log.lr_scope
        | _ -> Alcotest.fail "expected exactly one record");
    tc "records below the level are dropped at emission" (fun () ->
        let lg = Engine.Log.create ~level:Engine.Log.Warn () in
        Engine.Log.record lg ~level:Engine.Log.Debug ~event:"quiet" [];
        Engine.Log.record lg ~level:Engine.Log.Error ~event:"loud" [];
        check Alcotest.int "one survived" 1 (Engine.Log.length lg));
    tc "field values are JSON-escaped" (fun () ->
        let lg = Engine.Log.create () in
        Engine.Log.record lg ~level:Engine.Log.Info ~event:"e"
          [ ("msg", "a\"b\nc") ];
        let s = Engine.Log.to_string lg in
        check Alcotest.bool "escaped" true (is_infix ~affix:{|a\"b\nc|} s));
    tc "parse_spec splits a trailing level and keeps odd paths" (fun () ->
        check Alcotest.bool "plain" true
          (Engine.Log.parse_spec "run.log" = Ok ("run.log", Engine.Log.Info));
        check Alcotest.bool "level split" true
          (Engine.Log.parse_spec "run.log:debug"
          = Ok ("run.log", Engine.Log.Debug));
        check Alcotest.bool "unknown suffix is path" true
          (Engine.Log.parse_spec "run:2.log" = Ok ("run:2.log", Engine.Log.Info));
        check Alcotest.bool "empty rejected" true
          (match Engine.Log.parse_spec "" with Error _ -> true | Ok _ -> false));
  ]

(* ------------------------------------------------------------------ *)
(* Heartbeat folding edge cases                                        *)
(* ------------------------------------------------------------------ *)

let fold_tests =
  [
    tc "execs/crashes sum, covered maxes" (fun () ->
        check
          (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int)
          "fold" (30, 70, 3)
          (Engine.Status.fold_heartbeats [ (10, 70, 1); (20, 55, 2) ]));
    tc "a zero-exec shard contributes nothing" (fun () ->
        check
          (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int)
          "fold" (10, 70, 1)
          (Engine.Status.fold_heartbeats [ (10, 70, 1); (0, 0, 0) ]));
    tc "a regressing covered feed never un-counts edges" (fun () ->
        let ctx = Engine.Ctx.create ~clock:(fake_clock ()) () in
        let out = Buffer.create 64 in
        let st =
          Engine.Status.attach
            ~out:(Buffer.add_string out)
            ~interval_ns:0L ~label:"t" ctx
        in
        Engine.Status.update st ~execs:10 ~covered:100 ~crashes:0 ();
        (* a crashed shard's beat drops out of the fold: covered dips *)
        Engine.Status.update st ~execs:12 ~covered:60 ~crashes:0 ();
        check Alcotest.bool "still 100 edges" true
          (is_infix ~affix:"100 edges" (Engine.Status.line st)));
    tc "fresh edges through update reset the plateau streak" (fun () ->
        let ctx = Engine.Ctx.create ~clock:(fake_clock ()) () in
        let st =
          Engine.Status.attach ~out:ignore ~interval_ns:0L ~label:"t" ctx
        in
        (* plateau builds on the event path ... *)
        for i = 1 to 4 do
          Engine.Ctx.emit ctx
            (Engine.Event.Coverage_sampled { iteration = i; covered = 50 })
        done;
        check Alcotest.bool "plateau on" true
          (is_infix ~affix:"plateau" (Engine.Status.line st));
        (* ... and a heartbeat fold that finally gains an edge clears it *)
        Engine.Status.update st ~execs:1 ~covered:51 ~crashes:0 ();
        check Alcotest.bool "plateau cleared" false
          (is_infix ~affix:"plateau" (Engine.Status.line st)));
  ]

(* ------------------------------------------------------------------ *)
(* Live serve endpoints                                                *)
(* ------------------------------------------------------------------ *)

(* Single-threaded HTTP client: connect, send, then alternate polling
   the server and draining our socket until it closes the connection. *)
let http_get srv path =
  let addr = Engine.Serve.bound_addr srv in
  let i = String.rindex addr ':' in
  let host = String.sub addr 0 i in
  let port =
    int_of_string (String.sub addr (i + 1) (String.length addr - i - 1))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  let req = "GET " ^ path ^ " HTTP/1.1\r\nHost: t\r\n\r\n" in
  ignore (Unix.write_substring fd req 0 (String.length req));
  let buf = Buffer.create 1024 in
  let tmp = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec drain () =
    Engine.Serve.poll srv;
    match Unix.select [ fd ] [] [] 0.01 with
    | [ _ ], _, _ ->
      let n = Unix.read fd tmp 0 (Bytes.length tmp) in
      if n > 0 then begin
        Buffer.add_subbytes buf tmp 0 n;
        drain ()
      end
    | _ ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "serve: no response within 5s"
      else drain ()
  in
  drain ();
  Unix.close fd;
  let resp = Buffer.contents buf in
  match Astring.String.find_sub ~sub:"\r\n\r\n" resp with
  | None -> Alcotest.fail ("serve: malformed response: " ^ resp)
  | Some i ->
    let head = String.sub resp 0 i in
    let body = String.sub resp (i + 4) (String.length resp - i - 4) in
    let code =
      match String.split_on_char ' ' head with
      | _ :: c :: _ -> int_of_string c
      | _ -> Alcotest.fail "serve: no status code"
    in
    (code, head, body)

let with_serve f =
  let ctx = Engine.Ctx.create () in
  match Engine.Serve.listen ~addr:"127.0.0.1:0" ctx with
  | Error e -> Alcotest.fail ("listen: " ^ e)
  | Ok srv ->
    Fun.protect ~finally:(fun () -> Engine.Serve.close srv) (fun () ->
        f ctx srv)

let serve_tests =
  [
    tc "/healthz flips 200 -> 503 when the breaker trips" (fun () ->
        with_serve (fun ctx srv ->
            let code, _, body = http_get srv "/healthz" in
            check Alcotest.int "healthy" 200 code;
            check Alcotest.string "ok body" "ok\n" body;
            Engine.Metrics.incr
              (Engine.Metrics.counter ctx.Engine.Ctx.metrics
                 "shard.breaker_tripped");
            let code, _, _ = http_get srv "/healthz" in
            check Alcotest.int "breaker tripped" 503 code));
    tc "/metrics serves the live Prometheus rendering" (fun () ->
        with_serve (fun ctx srv ->
            Engine.Metrics.incr ~by:3
              (Engine.Metrics.counter ctx.Engine.Ctx.metrics "compile.total");
            let code, head, body = http_get srv "/metrics" in
            check Alcotest.int "200" 200 code;
            check Alcotest.bool "prometheus content type" true
              (is_infix ~affix:"text/plain; version=0.0.4" head);
            check Alcotest.string "matches the exporter"
              (Engine.Telemetry.prometheus_of_snapshot
                 (Engine.Metrics.snapshot ctx.Engine.Ctx.metrics))
              body;
            check Alcotest.bool "live value" true
              (is_infix ~affix:"metamut_compile_total 3" body)));
    tc "/status.json folds shard heartbeats and quarantines" (fun () ->
        with_serve (fun _ctx srv ->
            Engine.Serve.note_shard srv ~shard:0 ~execs:10 ~covered:70
              ~crashes:1;
            Engine.Serve.note_shard srv ~shard:1 ~execs:20 ~covered:55
              ~crashes:0;
            Engine.Serve.note_quarantine srv ~unit_name:"uCFuzz-GCC"
              ~reason:"worker-oom";
            let code, _, body = http_get srv "/status.json" in
            check Alcotest.int "200" 200 code;
            check Alcotest.bool "execs summed" true
              (is_infix ~affix:"\"execs\": 30" body);
            check Alcotest.bool "covered maxed" true
              (is_infix ~affix:"\"covered\": 70" body);
            check Alcotest.bool "quarantine listed" true
              (is_infix ~affix:"uCFuzz-GCC" body);
            check Alcotest.bool "not done" true
              (is_infix ~affix:"\"done\": false" body);
            Engine.Serve.set_done srv;
            let _, _, body = http_get srv "/status.json" in
            check Alcotest.bool "done" true
              (is_infix ~affix:"\"done\": true" body)));
    tc "/series.json records samples from the event sink" (fun () ->
        with_serve (fun ctx srv ->
            Engine.Serve.attach_sink srv;
            Engine.Ctx.emit ctx
              (Engine.Event.Compile_finished
                 (Engine.Event.Compiled_ok, Engine.Event.Backend));
            Engine.Ctx.emit ctx
              (Engine.Event.Coverage_sampled { iteration = 5; covered = 42 });
            let code, _, body = http_get srv "/series.json" in
            check Alcotest.int "200" 200 code;
            check Alcotest.bool "sample present" true
              (is_infix ~affix:"\"covered\": 42" body)));
    tc "unknown paths 404; junk requests never wedge the server"
      (fun () ->
        with_serve (fun _ctx srv ->
            let code, _, _ = http_get srv "/nope" in
            check Alcotest.int "404" 404 code;
            let code, _, _ = http_get srv "/healthz" in
            check Alcotest.int "still serving" 200 code));
  ]

let () =
  Alcotest.run "telemetry"
    [
      ("gauge-policy", gauge_policy_tests);
      ("trace", trace_tests);
      ("exporters", exporter_tests);
      ("probe", probe_tests);
      ("status", status_tests);
      ("trend-tail", trend_tail_tests);
      ("telemetry", telemetry_tests);
      ("folded", folded_tests);
      ("yield", yield_tests);
      ("log", log_tests);
      ("heartbeat-fold", fold_tests);
      ("serve", serve_tests);
    ]
