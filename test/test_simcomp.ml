(* Tests for the simulated compiler: coverage, feature extraction, IR
   lowering, optimizer passes, back-end, the reference interpreter, the
   bug database, and the end-to-end pipeline. *)

open Cparse

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let parse src =
  match Parser.parse src with
  | Ok tu -> tu
  | Error e -> Alcotest.failf "parse failed: %s" e

let run_src src =
  match Simcomp.Interp.run_src src with
  | Ok o -> o
  | Error e -> Alcotest.failf "interp parse failed: %s" e

let exit_of src = (run_src src).Simcomp.Interp.o_exit
let output_of src = (run_src src).Simcomp.Interp.o_output

(* ------------------------------------------------------------------ *)
(* Coverage                                                            *)
(* ------------------------------------------------------------------ *)

let coverage_tests =
  [
    tc "hit and covered" (fun () ->
        let c = Simcomp.Coverage.create () in
        Simcomp.Coverage.hit c 1;
        Simcomp.Coverage.hit c 1;
        Simcomp.Coverage.hit c 2;
        check Alcotest.int "covered" 2 (Simcomp.Coverage.covered c);
        check Alcotest.int "hits" 3 (Simcomp.Coverage.total_hits c));
    tc "equal compares hits, distinct count, and the map" (fun () ->
        let a = Simcomp.Coverage.create () in
        let b = Simcomp.Coverage.create () in
        check Alcotest.bool "fresh maps equal" true (Simcomp.Coverage.equal a b);
        Simcomp.Coverage.hit a 7;
        check Alcotest.bool "diverged" false (Simcomp.Coverage.equal a b);
        Simcomp.Coverage.hit b 7;
        check Alcotest.bool "re-converged" true (Simcomp.Coverage.equal a b);
        (* same branch set, different hit counts: still unequal *)
        Simcomp.Coverage.hit a 7;
        check Alcotest.bool "hit counts matter" false
          (Simcomp.Coverage.equal a b));
    tc "merge counts fresh branches" (fun () ->
        let a = Simcomp.Coverage.create () in
        let b = Simcomp.Coverage.create () in
        Simcomp.Coverage.hit a 1;
        Simcomp.Coverage.hit b 1;
        Simcomp.Coverage.hit b 2;
        let fresh = Simcomp.Coverage.merge ~into:a b in
        check Alcotest.int "fresh" 1 fresh;
        check Alcotest.int "covered" 2 (Simcomp.Coverage.covered a));
    tc "has_new_coverage" (fun () ->
        let seen = Simcomp.Coverage.create () in
        let x = Simcomp.Coverage.create () in
        Simcomp.Coverage.hit seen 1;
        Simcomp.Coverage.hit x 1;
        check Alcotest.bool "no new" false
          (Simcomp.Coverage.has_new_coverage ~seen x);
        Simcomp.Coverage.hit x 99;
        check Alcotest.bool "new" true
          (Simcomp.Coverage.has_new_coverage ~seen x));
    tc "ids are bounded by the map size" (fun () ->
        let c = Simcomp.Coverage.create () in
        Simcomp.Coverage.hit c (Simcomp.Coverage.map_size + 5);
        check Alcotest.bool "wrapped" true
          (List.for_all
             (fun id -> id < Simcomp.Coverage.map_size)
             (Simcomp.Coverage.branch_ids c)));
    tc "merge is idempotent on same map" (fun () ->
        let a = Simcomp.Coverage.create () in
        Simcomp.Coverage.hit a 3;
        let b = Simcomp.Coverage.copy a in
        let fresh = Simcomp.Coverage.merge ~into:a b in
        check Alcotest.int "no fresh" 0 fresh);
  ]

(* Differential pin of the bitmap against the previous Hashtbl
   representation: the AFL-style edge map must report the same covered
   counts, fresh-branch counts, has-new verdicts, total hits, and id
   sets as the reference for any event stream, so coverage-guided
   acceptance decisions are unchanged by the representation swap. *)
module Ref_cov = struct
  type t = { map : (int, int) Hashtbl.t; mutable hits : int }

  let create () = { map = Hashtbl.create 64; hits = 0 }

  let hit cov id =
    let id = id land (Simcomp.Coverage.map_size - 1) in
    cov.hits <- cov.hits + 1;
    match Hashtbl.find_opt cov.map id with
    | Some n -> Hashtbl.replace cov.map id (n + 1)
    | None -> Hashtbl.replace cov.map id 1

  let covered c = Hashtbl.length c.map
  let ids c = List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) c.map [])

  let merge ~into:dst src =
    let fresh = ref 0 in
    Hashtbl.iter
      (fun k v ->
        match Hashtbl.find_opt dst.map k with
        | Some n -> Hashtbl.replace dst.map k (n + v)
        | None ->
          incr fresh;
          Hashtbl.replace dst.map k v)
      src.map;
    dst.hits <- dst.hits + src.hits;
    !fresh

  let has_new ~seen src =
    Hashtbl.fold
      (fun k _ acc -> acc || not (Hashtbl.mem seen.map k))
      src.map false
end

(* A randomized id stream: a mix of small ids (forced collisions), full
   range ids, and out-of-range ids (wrap-around). *)
let random_ids rng n =
  List.init n (fun _ ->
      match Rng.int rng 3 with
      | 0 -> Rng.int rng 64
      | 1 -> Rng.int rng Simcomp.Coverage.map_size
      | _ -> Rng.int rng (8 * Simcomp.Coverage.map_size))

let bitmap_differential_tests =
  [
    tc "hit/covered/hits/ids match the Hashtbl reference" (fun () ->
        let rng = Rng.create 2024 in
        for _round = 1 to 20 do
          let bm = Simcomp.Coverage.create () and rf = Ref_cov.create () in
          let ids = random_ids rng (1 + Rng.int rng 400) in
          List.iter
            (fun id ->
              Simcomp.Coverage.hit bm id;
              Ref_cov.hit rf id)
            ids;
          check Alcotest.int "covered" (Ref_cov.covered rf)
            (Simcomp.Coverage.covered bm);
          check Alcotest.int "hits" rf.Ref_cov.hits
            (Simcomp.Coverage.total_hits bm);
          check
            Alcotest.(list int)
            "id sets" (Ref_cov.ids rf)
            (Simcomp.Coverage.branch_ids bm)
        done);
    tc "merge fresh counts and has_new match the reference" (fun () ->
        let rng = Rng.create 4242 in
        let bm_acc = Simcomp.Coverage.create () in
        let rf_acc = Ref_cov.create () in
        for _round = 1 to 40 do
          let bm = Simcomp.Coverage.create () and rf = Ref_cov.create () in
          List.iter
            (fun id ->
              Simcomp.Coverage.hit bm id;
              Ref_cov.hit rf id)
            (random_ids rng (Rng.int rng 120));
          check Alcotest.bool "has_new"
            (Ref_cov.has_new ~seen:rf_acc rf)
            (Simcomp.Coverage.has_new_coverage ~seen:bm_acc bm);
          let rf_fresh = Ref_cov.merge ~into:rf_acc rf in
          let bm_fresh = Simcomp.Coverage.merge ~into:bm_acc bm in
          check Alcotest.int "fresh" rf_fresh bm_fresh;
          check Alcotest.int "accumulated covered" (Ref_cov.covered rf_acc)
            (Simcomp.Coverage.covered bm_acc);
          check Alcotest.int "accumulated hits" rf_acc.Ref_cov.hits
            (Simcomp.Coverage.total_hits bm_acc)
        done);
    tc "coverage-guided accept decisions identical to the reference"
      (fun () ->
        (* Algorithm 1's accept test, run side by side: for the same RNG
           seed the two representations must accept/reject the exact
           same mutants *)
        let rng = Rng.create 77 in
        let bm_pool = Simcomp.Coverage.create () in
        let rf_pool = Ref_cov.create () in
        let decisions = ref [] in
        for _mutant = 1 to 300 do
          let ids = random_ids rng (Rng.int rng 60) in
          let bm = Simcomp.Coverage.create () and rf = Ref_cov.create () in
          List.iter
            (fun id ->
              Simcomp.Coverage.hit bm id;
              Ref_cov.hit rf id)
            ids;
          (* old API shape: has_new, then merge *)
          let rf_accept = Ref_cov.has_new ~seen:rf_pool rf in
          ignore (Ref_cov.merge ~into:rf_pool rf);
          (* new API shape: single merge, fresh count is the signal *)
          let bm_accept = Simcomp.Coverage.merge ~into:bm_pool bm > 0 in
          decisions := (rf_accept, bm_accept) :: !decisions
        done;
        check Alcotest.bool "some accepts and some rejects" true
          (List.exists (fun (a, _) -> a) !decisions
          && List.exists (fun (a, _) -> not a) !decisions);
        List.iter
          (fun (rf_accept, bm_accept) ->
            check Alcotest.bool "same decision" rf_accept bm_accept)
          !decisions);
    tc "reset zeroes in place and copy is independent" (fun () ->
        let c = Simcomp.Coverage.create () in
        List.iter (Simcomp.Coverage.hit c) [ 1; 2; 3; 1 ];
        let d = Simcomp.Coverage.copy c in
        Simcomp.Coverage.reset c;
        check Alcotest.int "reset covered" 0 (Simcomp.Coverage.covered c);
        check Alcotest.int "reset hits" 0 (Simcomp.Coverage.total_hits c);
        check Alcotest.(list int) "reset ids" [] (Simcomp.Coverage.branch_ids c);
        check Alcotest.int "copy survives" 3 (Simcomp.Coverage.covered d);
        check Alcotest.int "copy hits" 4 (Simcomp.Coverage.total_hits d);
        (* a reset map accepts hits again *)
        Simcomp.Coverage.hit c 9;
        check Alcotest.int "after reset" 1 (Simcomp.Coverage.covered c));
    tc "per-cell counters saturate without losing distinctness" (fun () ->
        let c = Simcomp.Coverage.create () in
        for _ = 1 to 1000 do
          Simcomp.Coverage.hit c 5
        done;
        check Alcotest.int "one branch" 1 (Simcomp.Coverage.covered c);
        check Alcotest.int "exact hits" 1000 (Simcomp.Coverage.total_hits c);
        (* saturated cells still merge correctly *)
        let d = Simcomp.Coverage.create () in
        Simcomp.Coverage.hit d 5;
        check Alcotest.int "no fresh" 0 (Simcomp.Coverage.merge ~into:c d));
  ]

(* ------------------------------------------------------------------ *)
(* Feature extraction                                                  *)
(* ------------------------------------------------------------------ *)

let feat src = Simcomp.Features.ast_features (parse src)

let feature_tests =
  [
    tc "counts functions, loops, ifs" (fun () ->
        let a =
          feat
            "int f(void) { if (1) return 1; return 0; }\n\
             int main(void) { while (0) ; for (;;) break; return f(); }"
        in
        check Alcotest.int "functions" 2 a.Simcomp.Features.n_functions;
        check Alcotest.int "ifs" 1 a.n_ifs;
        check Alcotest.int "loops" 2 a.n_loops);
    tc "const and volatile qualifiers" (fun () ->
        let a = feat "int main(void) { const int c = 1; volatile int v = 2; return c + v; }" in
        check Alcotest.bool "const" true a.Simcomp.Features.has_const_qual;
        check Alcotest.bool "volatile" true a.has_volatile_qual);
    tc "sprintf-to-self detection" (fun () ->
        let a =
          feat
            "char buffer[32];\n\
             int main(void) { return sprintf(buffer, \"%s\", buffer); }"
        in
        check Alcotest.bool "self" true a.Simcomp.Features.has_sprintf_self);
    tc "sprintf to other is not self" (fun () ->
        let a =
          feat
            "char buffer[32];\n\
             int main(void) { return sprintf(buffer, \"%s\", \"bar\"); }"
        in
        check Alcotest.bool "not self" false a.Simcomp.Features.has_sprintf_self);
    tc "void function with labels and no returns" (fun () ->
        let a =
          feat
            "void foo(int x) { if (x) goto a; if (x > 1) goto b; a: ; b: ; }\n\
             int main(void) { foo(1); return 0; }"
        in
        check Alcotest.bool "labels-no-return" true
          a.Simcomp.Features.has_labels_no_return;
        check Alcotest.bool "void-with-labels" true a.has_void_fn_with_labels);
    tc "zero-init decreasing loop (GCC #111820 shape)" (fun () ->
        let a =
          feat
            "int r;\nvoid f(void) { int n = 0; while (--n) { r += 1; } }\n\
             int main(void) { return 0; }"
        in
        check Alcotest.bool "shape" true
          a.Simcomp.Features.has_zero_init_decreasing_loop);
    tc "accumulation chain" (fun () ->
        let a =
          feat
            "int r[6];\n\
             void f(void) { r[1] += r[0]; r[2] += r[1]; r[3] += r[2]; }\n\
             int main(void) { return 0; }"
        in
        check Alcotest.bool "chain" true a.Simcomp.Features.has_scalar_accum_chain);
    tc "compound literal and struct cast (Clang #69213 shape)" (fun () ->
        let a =
          feat
            "struct s2 { int a; int b; };\n\
             int main(void) { struct s2 v; v = (struct s2){1, 2}; return v.a; }"
        in
        check Alcotest.bool "compound" true a.Simcomp.Features.has_compound_literal;
        check Alcotest.bool "struct cast" true a.has_struct_cast);
    tc "pointer arith cast chain (GCC #111819 shape)" (fun () ->
        let a =
          feat
            "long long combinedVar;\n\
             double *bar(void) { return (double *)((char *)&combinedVar + 8); }\n\
             int main(void) { return 0; }"
        in
        check Alcotest.bool "chain" true
          a.Simcomp.Features.has_ptr_arith_cast_chain);
    tc "fallthrough detection" (fun () ->
        let a =
          feat
            "int main(void) { int r = 0; switch (r) { case 0: r = 1; case 1: \
             r = 2; break; } return r; }"
        in
        check Alcotest.bool "fallthrough" true a.Simcomp.Features.has_fallthrough);
    tc "shift overflow" (fun () ->
        let a = feat "int main(void) { int x = 1; return x << 40; }" in
        check Alcotest.bool "overflow" true a.Simcomp.Features.has_shift_overflow);
    tc "division by literal zero" (fun () ->
        let a = feat "int main(void) { int x = 4; return x / 0; }" in
        check Alcotest.bool "div0" true a.Simcomp.Features.has_div_by_literal_zero);
    tc "uninitialised use" (fun () ->
        let a = feat "int main(void) { int x; return x + 1; }" in
        check Alcotest.bool "uninit" true a.Simcomp.Features.has_uninit_use);
    tc "initialised use is fine" (fun () ->
        let a = feat "int main(void) { int x = 0; return x + 1; }" in
        check Alcotest.bool "no uninit" false a.Simcomp.Features.has_uninit_use);
    tc "recursion" (fun () ->
        let a =
          feat "int f(int n) { return n ? f(n - 1) : 0; }\nint main(void) { return f(3); }"
        in
        check Alcotest.bool "recursion" true a.Simcomp.Features.has_recursion);
    tc "loop depth" (fun () ->
        let a =
          feat
            "int main(void) { for (;;) { for (;;) { for (;;) break; break; } \
             break; } return 0; }"
        in
        check Alcotest.int "depth" 3 a.Simcomp.Features.max_loop_depth);
    tc "cast chain depth" (fun () ->
        let a = feat "int main(void) { return (int)(char)(long)1; }" in
        check Alcotest.int "chain" 3 a.Simcomp.Features.max_cast_chain);
    tc "text features" (fun () ->
        let tx =
          Simcomp.Features.text_features "int aaaaaaaaaaaaaaaaaaaa; ((((("
        in
        check Alcotest.int "ident" 20 tx.Simcomp.Features.tx_max_ident_len;
        check Alcotest.int "paren depth" 5 tx.tx_paren_depth;
        check Alcotest.bool "no ctrl" false tx.tx_has_control_chars);
    tc "text features on binary garbage" (fun () ->
        let tx = Simcomp.Features.text_features "\x01\x02\"abc" in
        check Alcotest.bool "ctrl" true tx.Simcomp.Features.tx_has_control_chars;
        check Alcotest.bool "quote imbalance" true tx.tx_quote_imbalance);
  ]

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)
(* ------------------------------------------------------------------ *)

let interp_tests =
  [
    tc "arithmetic and return" (fun () ->
        check Alcotest.int "6*7" 42 (exit_of "int main(void) { return 6 * 7; }"));
    tc "factorial via loop" (fun () ->
        check Alcotest.int "5!" 120
          (exit_of
             "int main(void) { int f = 1; for (int i = 1; i <= 5; i++) f = f \
              * i; return f; }"));
    tc "recursion (fib)" (fun () ->
        check Alcotest.int "fib 10" 55
          (exit_of
             "int fib(int n) { if (n < 2) return n; return fib(n-1) + \
              fib(n-2); }\nint main(void) { return fib(10); }"));
    tc "switch fallthrough" (fun () ->
        check Alcotest.int "fallthrough" 21
          (exit_of
             "int main(void) { int r = 0; switch (2) { case 2: r = 20; case \
              3: r += 1; break; default: r = 9; } return r; }"));
    tc "switch default" (fun () ->
        check Alcotest.int "default" 9
          (exit_of
             "int main(void) { int r = 0; switch (77) { case 2: r = 1; \
              break; default: r = 9; } return r; }"));
    tc "goto forward and backward" (fun () ->
        check Alcotest.int "goto" 6
          (exit_of
             "int main(void) { int n = 3; int s = 0; top: if (n == 0) goto \
              done; s += n; n--; goto top; done: return s; }"));
    tc "break and continue" (fun () ->
        check Alcotest.int "sum odds < 8" 16
          (exit_of
             "int main(void) { int s = 0; for (int i = 0; i < 100; i++) { if \
              (i >= 8) break; if (i % 2 == 0) continue; s += i; } return s; }"));
    tc "arrays" (fun () ->
        check Alcotest.int "array sum" 30
          (exit_of
             "int main(void) { int a[3]; a[0] = 4; a[1] = 10; a[2] = 16; \
              return a[0] + a[1] + a[2]; }"));
    tc "array out of bounds traps" (fun () ->
        let o = run_src "int main(void) { int a[2]; a[5] = 1; return 0; }" in
        check Alcotest.bool "aborted" true o.Simcomp.Interp.o_aborted);
    tc "structs" (fun () ->
        check Alcotest.int "fields" 7
          (exit_of
             "struct p { int x; int y; };\n\
              int main(void) { struct p v; v.x = 3; v.y = 4; return v.x + \
              v.y; }"));
    tc "pointers" (fun () ->
        check Alcotest.int "through pointer" 9
          (exit_of
             "int main(void) { int x = 1; int *p = &x; *p = 9; return x; }"));
    tc "struct pointer arrow" (fun () ->
        check Alcotest.int "arrow" 5
          (exit_of
             "struct p { int x; };\n\
              void set(struct p *q) { q->x = 5; }\n\
              int main(void) { struct p v; set(&v); return v.x; }"));
    tc "printf output" (fun () ->
        check Alcotest.string "hello" "hello 42\n"
          (output_of {|int main(void) { printf("hello %d\n", 42); return 0; }|}));
    tc "sprintf + strlen" (fun () ->
        check Alcotest.int "len" 3
          (exit_of
             {|char buffer[32];
int main(void) { return sprintf(buffer, "%s", "bar"); }|}));
    tc "strcpy into buffer" (fun () ->
        check Alcotest.string "copied" "hello\n"
          (output_of
             {|int main(void) { char b[16]; strcpy(b, "hello"); puts(b); return 0; }|}));
    tc "division by zero aborts" (fun () ->
        let o = run_src "int main(void) { int z = 0; return 4 / z; }" in
        check Alcotest.bool "aborted" true o.Simcomp.Interp.o_aborted);
    tc "abort() aborts" (fun () ->
        let o = run_src "int main(void) { abort(); return 0; }" in
        check Alcotest.bool "aborted" true o.Simcomp.Interp.o_aborted);
    tc "exit() sets code" (fun () ->
        check Alcotest.int "code" 3 (exit_of "int main(void) { exit(3); return 0; }"));
    tc "infinite loop runs out of fuel" (fun () ->
        let o = run_src "int main(void) { while (1) ; return 0; }" in
        check Alcotest.bool "hang" true o.Simcomp.Interp.o_hang;
        check Alcotest.bool "not a stack overflow" false
          o.Simcomp.Interp.o_stack_overflow);
    tc "runaway recursion is a stack overflow, not a hang" (fun () ->
        let o =
          run_src
            "int f(int n) { return f(n + 1); }\n\
             int main(void) { return f(0); }"
        in
        check Alcotest.bool "stack overflow" true
          o.Simcomp.Interp.o_stack_overflow;
        check Alcotest.bool "distinct from fuel exhaustion" false
          o.Simcomp.Interp.o_hang;
        check Alcotest.bool "not an abort" false o.Simcomp.Interp.o_aborted;
        check Alcotest.int "sigsegv exit" 139 o.Simcomp.Interp.o_exit);
    tc "bounded recursion stays under the depth limit" (fun () ->
        check Alcotest.int "5050 mod 256" 186
          (exit_of
             "int f(int n) { if (n == 0) return 0; return n + f(n - 1); }\n\
              int main(void) { return f(100) % 256; }"));
    tc "ternary and comma" (fun () ->
        check Alcotest.int "value" 11
          (exit_of "int main(void) { int x = (1, 2); return x > 1 ? 11 : 22; }"));
    tc "float arithmetic" (fun () ->
        check Alcotest.int "cast back" 3
          (exit_of "int main(void) { double d = 1.5; return (int)(d * 2.0); }"));
    tc "char truncation" (fun () ->
        check Alcotest.int "(char)257" 1
          (exit_of "int main(void) { return (char)257; }"));
    tc "do-while runs at least once" (fun () ->
        check Alcotest.int "once" 1
          (exit_of "int main(void) { int n = 0; do n++; while (0); return n; }"));
    tc "global initialisation order" (fun () ->
        check Alcotest.int "init" 7
          (exit_of "int g = 7;\nint main(void) { return g; }"));
    tc "small generated seeds terminate" (fun () ->
        (* bounded loops terminate; deep configurations can still be
           exponentially expensive (calls nested in loops), so strict
           termination is asserted on a small configuration *)
        let cfg =
          { Ast_gen.default_config with max_functions = 2; max_depth = 2;
            call_weight = 1 }
        in
        let rng = Rng.create 202 in
        for _ = 1 to 30 do
          let tu = Ast_gen.gen_tu ~cfg rng in
          let o = Simcomp.Interp.run ~fuel:5_000_000 tu in
          check Alcotest.bool "no hang" false o.Simcomp.Interp.o_hang
        done);
    tc "interpreter outcome is deterministic" (fun () ->
        let rng = Rng.create 203 in
        for _ = 1 to 10 do
          let tu = Ast_gen.gen_tu rng in
          let o1 = Simcomp.Interp.run ~fuel:100_000 tu in
          let o2 = Simcomp.Interp.run ~fuel:100_000 tu in
          check Alcotest.int "same exit" o1.Simcomp.Interp.o_exit
            o2.Simcomp.Interp.o_exit;
          check Alcotest.string "same output" o1.Simcomp.Interp.o_output
            o2.Simcomp.Interp.o_output
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Lowering and IR                                                     *)
(* ------------------------------------------------------------------ *)

let lower src =
  let tu = parse src in
  let tc_res = Typecheck.check tu in
  Simcomp.Lower.lower_tu tu tc_res

let ir_tests =
  [
    tc "lowering produces a function per definition" (fun () ->
        let p = lower "int f(void) { return 1; }\nint main(void) { return f(); }" in
        check Alcotest.int "functions" 2 (List.length p.Simcomp.Ir.p_funcs));
    tc "terminators always defined on reachable blocks" (fun () ->
        let p =
          lower
            "int main(void) { int x = 0; if (x) x = 1; else x = 2; while (x) \
             x--; return x; }"
        in
        List.iter
          (fun f ->
            match f.Simcomp.Ir.fn_blocks with
            | entry :: _ ->
              (* entry must not be unreachable-terminated *)
              check Alcotest.bool "entry terminated" true
                (entry.Simcomp.Ir.b_term <> Simcomp.Ir.Tunreachable
                || entry.b_instrs = [])
            | [] -> Alcotest.fail "no blocks")
          p.Simcomp.Ir.p_funcs);
    tc "successors reference existing blocks" (fun () ->
        let p =
          lower
            "int main(void) { int s = 0; for (int i = 0; i < 3; i++) { if (i) \
             s += i; } switch (s) { case 1: break; default: break; } return s; }"
        in
        List.iter
          (fun f ->
            List.iter
              (fun b ->
                List.iter
                  (fun l ->
                    check Alcotest.bool "target exists" true
                      (Simcomp.Ir.block_of f l <> None))
                  (Simcomp.Ir.successors b.Simcomp.Ir.b_term))
              f.Simcomp.Ir.fn_blocks)
          p.Simcomp.Ir.p_funcs);
    tc "globals become slots" (fun () ->
        let p = lower "int g = 5;\nint a[4];\nint main(void) { return g; }" in
        let names = List.map (fun s -> s.Simcomp.Ir.g_name) p.Simcomp.Ir.p_globals in
        check Alcotest.bool "g" true (List.mem "g" names);
        check Alcotest.bool "a" true (List.mem "a" names));
    tc "ir printing is total" (fun () ->
        let p =
          lower
            "int main(void) { int x = 1; x += 2; x = x * 3 - 1; return x; }"
        in
        check Alcotest.bool "nonempty" true
          (String.length (Simcomp.Ir.program_to_string p) > 0));
    tc "program_size counts instructions" (fun () ->
        let p = lower "int main(void) { return 1 + 2; }" in
        check Alcotest.bool "positive" true (Simcomp.Ir.program_size p > 0));
  ]

(* ------------------------------------------------------------------ *)
(* Optimizer                                                           *)
(* ------------------------------------------------------------------ *)

let opt_tests =
  [
    tc "const folding fires on constant arithmetic" (fun () ->
        let p = lower "int main(void) { return 2 + 3 * 4; }" in
        let changes = Simcomp.Opt.const_fold_pass.Simcomp.Opt.run p in
        check Alcotest.bool "changed" true (changes > 0));
    tc "const folding turns constant branches into jumps" (fun () ->
        let p = lower "int main(void) { if (1 < 2) return 1; return 0; }" in
        ignore (Simcomp.Opt.const_fold_pass.Simcomp.Opt.run p);
        let has_cond_br = ref false in
        List.iter
          (fun f ->
            List.iter
              (fun b ->
                match b.Simcomp.Ir.b_term with
                | Simcomp.Ir.Tbr _ -> has_cond_br := true
                | _ -> ())
              f.Simcomp.Ir.fn_blocks)
          p.Simcomp.Ir.p_funcs;
        check Alcotest.bool "no conditional branch left" false !has_cond_br);
    tc "simplify-cfg removes unreachable blocks" (fun () ->
        let p = lower "int main(void) { return 1; int x = 2; return x; }" in
        ignore (Simcomp.Opt.const_fold_pass.Simcomp.Opt.run p);
        let before = List.length (List.hd p.Simcomp.Ir.p_funcs).Simcomp.Ir.fn_blocks in
        ignore (Simcomp.Opt.simplify_cfg_pass.Simcomp.Opt.run p);
        let after = List.length (List.hd p.Simcomp.Ir.p_funcs).Simcomp.Ir.fn_blocks in
        check Alcotest.bool "fewer blocks" true (after <= before));
    tc "dce removes instructions made dead by folding" (fun () ->
        let p = lower "int main(void) { int unused = 1 + 2; return 7; }" in
        ignore (Simcomp.Opt.const_fold_pass.Simcomp.Opt.run p);
        let changes = Simcomp.Opt.dce_pass.Simcomp.Opt.run p in
        check Alcotest.bool "removed" true (changes > 0));
    tc "dce keeps calls" (fun () ->
        let p =
          lower
            "int g;\nint f(void) { g = 1; return 0; }\n\
             int main(void) { f(); return g; }"
        in
        ignore (Simcomp.Opt.dce_pass.Simcomp.Opt.run p);
        let has_call = ref false in
        List.iter
          (fun fn ->
            List.iter
              (fun b ->
                List.iter
                  (fun i ->
                    match i with Simcomp.Ir.Icall _ -> has_call := true | _ -> ())
                  b.Simcomp.Ir.b_instrs)
              fn.Simcomp.Ir.fn_blocks)
          p.Simcomp.Ir.p_funcs;
        check Alcotest.bool "call kept" true !has_call);
    tc "strlen pass rewrites sprintf" (fun () ->
        let p =
          lower
            {|char buffer[32];
int main(void) { return sprintf(buffer, "%s", "bar"); }|}
        in
        let changes = Simcomp.Opt.strlen_pass.Simcomp.Opt.run p in
        check Alcotest.bool "rewritten" true (changes > 0));
    tc "inline pass folds constant functions" (fun () ->
        let p =
          lower "int five(void) { return 5; }\nint main(void) { return five(); }"
        in
        (* fold and simplify first so five() is a single constant return *)
        ignore (Simcomp.Opt.const_fold_pass.Simcomp.Opt.run p);
        ignore (Simcomp.Opt.simplify_cfg_pass.Simcomp.Opt.run p);
        let changes = Simcomp.Opt.inline_pass.Simcomp.Opt.run p in
        check Alcotest.bool "inlined" true (changes > 0));
    tc "pipeline level ordering" (fun () ->
        check Alcotest.int "O0 empty" 0
          (List.length (Simcomp.Opt.passes_for_level 0));
        check Alcotest.bool "O3 superset of O1" true
          (List.length (Simcomp.Opt.passes_for_level 3)
          > List.length (Simcomp.Opt.passes_for_level 1)));
    tc "disabled passes are skipped" (fun () ->
        let p = lower "int main(void) { return 1 + 2; }" in
        let results =
          Simcomp.Opt.run_pipeline ~level:2 ~disabled:[ "constfold" ] p
        in
        check Alcotest.bool "no constfold" false
          (List.mem_assoc "constfold" results));
  ]

(* ------------------------------------------------------------------ *)
(* Backend                                                             *)
(* ------------------------------------------------------------------ *)

let backend_tests =
  [
    tc "emits assembly text" (fun () ->
        let p = lower "int main(void) { int x = 1; return x + 2; }" in
        let asm, _ = Simcomp.Backend.emit_program p in
        check Alcotest.bool "has main" true
          (String.length asm > 0
          && String.sub asm 0 5 = ".data"
          || String.length asm > 0));
    tc "register allocation stays within bounds" (fun () ->
        let p =
          lower
            "int main(void) { int a = 1; int b = 2; int c = 3; int d = 4; \
             return a + b + c + d; }"
        in
        List.iter
          (fun f ->
            let assignment, _ = Simcomp.Backend.regalloc f in
            List.iter
              (fun (_, phys) ->
                check Alcotest.bool "in range" true
                  (phys = -1 || (phys >= 0 && phys < Simcomp.Backend.phys_regs)))
              assignment)
          p.Simcomp.Ir.p_funcs);
    tc "spills appear under register pressure" (fun () ->
        let exprs =
          String.concat " + " (List.init 40 (fun i -> Fmt.str "(a + %d)" i))
        in
        let p = lower (Fmt.str "int main(void) { int a = 1; return %s; }" exprs) in
        let _, spills = Simcomp.Backend.emit_program p in
        check Alcotest.bool "spilled" true (spills >= 0));
    tc "dense switch uses a jump table" (fun () ->
        let p =
          lower
            "int main(void) { int x = 3; switch (x) { case 0: return 0; case \
             1: return 1; case 2: return 2; case 3: return 3; } return 9; }"
        in
        let asm, _ = Simcomp.Backend.emit_program p in
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        check Alcotest.bool "jtab" true (contains asm "jtab"));
  ]

(* ------------------------------------------------------------------ *)
(* Bug database and end-to-end pipeline                                *)
(* ------------------------------------------------------------------ *)

let compile ?(compiler = Simcomp.Compiler.Gcc) ?(opt = 2) src =
  Simcomp.Compiler.compile compiler
    { Simcomp.Compiler.default_options with opt_level = opt }
    src

let expect_crash ?compiler ?opt ~bug src =
  match compile ?compiler ?opt src with
  | Simcomp.Compiler.Crashed c ->
    check Alcotest.string "bug id" bug c.Simcomp.Crash.bug_id
  | Simcomp.Compiler.Compiled _ -> Alcotest.failf "compiled, expected %s" bug
  | Simcomp.Compiler.Compile_error es ->
    Alcotest.failf "compile error (%s), expected %s" (String.concat ";" es) bug

let bug_tests =
  [
    tc "clean seed compiles at every level" (fun () ->
        let src = Ast_gen.gen_source (Rng.create 42) in
        List.iter
          (fun opt ->
            match compile ~opt src with
            | Simcomp.Compiler.Compiled _ -> ()
            | _ -> Alcotest.failf "failed at -O%d" opt)
          [ 0; 1; 2; 3 ]);
    tc "GCC #111820 shape hangs the vectorizer at -O3" (fun () ->
        expect_crash ~opt:3 ~bug:"gcc-111820"
          "int r[6];\n\
           void f(void) {\n\
           \  int n = 0;\n\
           \  while (--n) { r[1] += r[0]; r[2] += r[1]; r[3] += r[2]; }\n\
           }\n\
           int main(void) { return 0; }");
    tc "GCC #111820 does not fire at -O2" (fun () ->
        match
          compile ~opt:2
            "int r[6];\n\
             void f(void) {\n\
             \  int n = 0;\n\
             \  while (--n) { r[1] += r[0]; r[2] += r[1]; r[3] += r[2]; }\n\
             }\n\
             int main(void) { return 0; }"
        with
        | Simcomp.Compiler.Crashed _ -> Alcotest.fail "fired too early"
        | _ -> ());
    tc "strlen-range crash needs const + sprintf-self" (fun () ->
        expect_crash ~opt:2 ~bug:"gcc-strlen-range"
          "static char buffer[32];\n\
           const char tag = 1;\n\
           int test4(void) { return sprintf(buffer, \"%s\", buffer); }\n\
           int main(void) { return test4(); }");
    tc "Clang #63762 shape crashes the back-end" (fun () ->
        expect_crash ~compiler:Simcomp.Compiler.Clang ~bug:"clang-63762"
          "void foo(int x, int y) {\n\
           \  abort();\n\
           \  if (x > y) goto gt;\n\
           \  goto lt;\n\
           gt: ;\n\
           lt: ;\n\
           }\n\
           int main(void) { foo(1, 2); return 0; }");
    tc "GCC does not have Clang's bugs" (fun () ->
        match
          compile ~compiler:Simcomp.Compiler.Gcc
            "void foo(int x, int y) {\n\
             \  abort();\n\
             \  if (x > y) goto gt;\n\
             \  goto lt;\n\
             gt: ;\n\
             lt: ;\n\
             }\n\
             int main(void) { foo(1, 2); return 0; }"
        with
        | Simcomp.Compiler.Crashed c ->
          check Alcotest.bool "different bug" false
            (String.equal c.Simcomp.Crash.bug_id "clang-63762")
        | _ -> ());
    tc "front-end text bug fires on unparseable input" (fun () ->
        let long_ident = String.make 80 'a' in
        match compile (Fmt.str "int %s(((((" long_ident) with
        | Simcomp.Compiler.Crashed c ->
          check Alcotest.string "stage" "Front-End"
            (Simcomp.Crash.stage_to_string c.Simcomp.Crash.stage)
        | _ -> Alcotest.fail "expected a front-end crash");
    tc "crash identity uses top two frames" (fun () ->
        let c =
          {
            Simcomp.Crash.bug_id = "x";
            stage = Simcomp.Crash.Front_end;
            kind = Simcomp.Crash.Segfault;
            frames = [ "report_error"; "a"; "b"; "c" ];
          }
        in
        check Alcotest.string "key skips helpers" "a|b"
          (Simcomp.Crash.unique_key c));
    tc "compile errors are not crashes" (fun () ->
        match compile "int main(void) { return nope; }" with
        | Simcomp.Compiler.Compile_error _ -> ()
        | _ -> Alcotest.fail "expected compile error");
    tc "parse errors are reported" (fun () ->
        match compile "int main(void) {" with
        | Simcomp.Compiler.Compile_error _ -> ()
        | _ -> Alcotest.fail "expected parse error");
    tc "coverage differs between compilers" (fun () ->
        let src = "int main(void) { return 1 + 2; }" in
        let cg = Simcomp.Coverage.create () in
        let cc = Simcomp.Coverage.create () in
        ignore (Simcomp.Compiler.compile ~cov:cg Simcomp.Compiler.Gcc
                  Simcomp.Compiler.default_options src);
        ignore (Simcomp.Compiler.compile ~cov:cc Simcomp.Compiler.Clang
                  Simcomp.Compiler.default_options src);
        check Alcotest.bool "salted ids differ" true
          (Simcomp.Coverage.has_new_coverage ~seen:cg cc));
    tc "compilation coverage is deterministic" (fun () ->
        let src = Ast_gen.gen_source (Rng.create 77) in
        let c1 = Simcomp.Coverage.create () in
        let c2 = Simcomp.Coverage.create () in
        ignore (Simcomp.Compiler.compile ~cov:c1 Simcomp.Compiler.Gcc
                  Simcomp.Compiler.default_options src);
        ignore (Simcomp.Compiler.compile ~cov:c2 Simcomp.Compiler.Gcc
                  Simcomp.Compiler.default_options src);
        check Alcotest.bool "same" false
          (Simcomp.Coverage.has_new_coverage ~seen:c1 c2);
        check Alcotest.int "same count"
          (Simcomp.Coverage.covered c1)
          (Simcomp.Coverage.covered c2));
    tc "random_options stays in range" (fun () ->
        let rng = Rng.create 3 in
        for _ = 1 to 50 do
          let o = Simcomp.Compiler.random_options rng in
          check Alcotest.bool "level" true
            (o.Simcomp.Compiler.opt_level >= 0 && o.opt_level <= 3)
        done);
    tc "triage is deterministic" (fun () ->
        let a = Simcomp.Bugdb.triage_of "gcc-111820" in
        let b = Simcomp.Bugdb.triage_of "gcc-111820" in
        check Alcotest.bool "equal" true (a = b));
    tc "bug database covers all stages for both compilers" (fun () ->
        List.iter
          (fun compiler ->
            let bugs = Simcomp.Bugdb.bugs_for compiler in
            List.iter
              (fun stage ->
                check Alcotest.bool
                  (Fmt.str "%s has %s bugs"
                     (Simcomp.Bugdb.compiler_to_string compiler)
                     (Simcomp.Crash.stage_to_string stage))
                  true
                  (List.exists (fun b -> b.Simcomp.Bugdb.stage = stage) bugs))
              Simcomp.Crash.[ Front_end; Ir_gen; Optimization; Back_end ])
          Simcomp.Bugdb.[ Gcc; Clang ]);
  ]

(* opt passes must preserve the observable behaviour of the program when
   the compiler succeeds: we compare the interpreter's verdict before and
   after the mutation-free pipeline on generated seeds (the passes run on
   IR; the check is that the pipeline at least never crashes or corrupts
   the IR structurally) *)
let pipeline_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"pipeline is total on generated programs"
         ~count:60 QCheck.small_int
         (fun seed ->
           let src = Ast_gen.gen_source (Rng.create (seed + 501)) in
           match compile ~opt:3 src with
           | Simcomp.Compiler.Compiled _ -> true
           | Simcomp.Compiler.Compile_error _ -> false
           | Simcomp.Compiler.Crashed _ -> true (* latent bugs are legal *)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"optimizer never grows the program" ~count:40
         QCheck.small_int
         (fun seed ->
           let src = Ast_gen.gen_source (Rng.create (seed + 901)) in
           let tu = parse src in
           let tc_res = Typecheck.check tu in
           let p = Simcomp.Lower.lower_tu tu tc_res in
           let before = Simcomp.Ir.program_size p in
           ignore (Simcomp.Opt.run_pipeline ~level:2 ~disabled:[] p);
           Simcomp.Ir.program_size p <= before + 1));
  ]

(* ------------------------------------------------------------------ *)
(* Differential testing: AST semantics vs lowered IR vs optimized IR    *)
(* ------------------------------------------------------------------ *)

(* The scalar/array subset both interpreters share. *)
let diff_cfg =
  {
    Ast_gen.default_config with
    allow_pointers = false;
    allow_structs = false;
    allow_strings = false;
    max_functions = 2;
    max_depth = 2;
    call_weight = 1;
  }

let run_ir p =
  let o = Simcomp.Ir_interp.run ~fuel:2_000_000 p in
  match o.Simcomp.Ir_interp.o_unsupported with
  | Some _ -> None
  | None ->
    if o.Simcomp.Ir_interp.o_hang then None
    else Some (o.Simcomp.Ir_interp.o_exit, o.Simcomp.Ir_interp.o_trapped)

let run_ast tu =
  let o = Simcomp.Interp.run ~fuel:2_000_000 tu in
  if o.Simcomp.Interp.o_hang then None
  else Some (o.Simcomp.Interp.o_exit, o.Simcomp.Interp.o_aborted)

let differential_tests =
  [
    tc "ir interpreter runs a hand-written program" (fun () ->
        let p =
          lower
            "int acc;
             int triple(int x) { return x * 3; }
             int main(void) { int s = 0; for (int i = 0; i < 4; i++) s +=              triple(i); acc = s; return acc; }"
        in
        let o = Simcomp.Ir_interp.run p in
        check Alcotest.(option string) "supported" None
          o.Simcomp.Ir_interp.o_unsupported;
        check Alcotest.int "3*(0+1+2+3)" 18 o.Simcomp.Ir_interp.o_exit);
    tc "ir interpreter traps on division by zero" (fun () ->
        let p = lower "int main(void) { int z = 0; return 4 / z; }" in
        let o = Simcomp.Ir_interp.run p in
        check Alcotest.bool "trapped" true o.Simcomp.Ir_interp.o_trapped);
    tc "ir interpreter agrees with the AST interpreter on switch" (fun () ->
        let src =
          "int classify(int c) { int r = 0; switch (c) { case 0: case 1: r =            10; break; case 2: r = 20; case 3: r += 1; break; default: r = -1;            break; } return r; }
           int main(void) { return classify(2) + classify(0) + classify(9); }"
        in
        let tu = parse src in
        let p = lower src in
        check Alcotest.(option (pair int bool)) "same" (run_ast tu) (run_ir p));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"lowering preserves observable behaviour (AST vs IR)"
         ~count:80 QCheck.small_int
         (fun seed ->
           let rng = Rng.create (seed + 4001) in
           let tu = Ast_gen.gen_tu ~cfg:diff_cfg rng in
           let tc_res = Typecheck.check tu in
           let p = Simcomp.Lower.lower_tu tu tc_res in
           match run_ast tu, run_ir p with
           | Some a, Some b -> a = b
           | _ -> true (* fuel or unsupported: skip *)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"the optimizer is semantics-preserving (O2 pipeline)"
         ~count:80 QCheck.small_int
         (fun seed ->
           let rng = Rng.create (seed + 5001) in
           let tu = Ast_gen.gen_tu ~cfg:diff_cfg rng in
           let tc_res = Typecheck.check tu in
           let p = Simcomp.Lower.lower_tu tu tc_res in
           let before = run_ir p in
           ignore (Simcomp.Opt.run_pipeline ~level:2 ~disabled:[] p);
           let after = run_ir p in
           match before, after with
           | Some a, Some b -> a = b
           | _ -> true));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"O3 pipeline also preserves semantics" ~count:50
         QCheck.small_int
         (fun seed ->
           let rng = Rng.create (seed + 6001) in
           let tu = Ast_gen.gen_tu ~cfg:diff_cfg rng in
           let tc_res = Typecheck.check tu in
           let p = Simcomp.Lower.lower_tu tu tc_res in
           let before = run_ir p in
           ignore (Simcomp.Opt.run_pipeline ~level:3 ~disabled:[] p);
           let after = run_ir p in
           match before, after with
           | Some a, Some b -> a = b
           | _ -> true));
  ]

(* Mutants intentionally change *program* semantics, but the compiler
   stack must still translate whatever program it is given faithfully:
   AST and optimized-IR semantics must agree on mutants too. *)
let mutant_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"optimizer soundness holds on mutated programs" ~count:60
       QCheck.small_int
       (fun seed ->
         let rng = Rng.create (seed + 7001) in
         let tu = Ast_gen.gen_tu ~cfg:diff_cfg rng in
         let m = Rng.choose rng Mutators.Registry.core in
         match Mutators.Mutator.apply m ~rng tu with
         | None -> true
         | Some tu' ->
           let tc_res = Typecheck.check tu' in
           if not tc_res.Typecheck.r_ok then true
           else begin
             let p = Simcomp.Lower.lower_tu tu' tc_res in
             let before = run_ir p in
             ignore (Simcomp.Opt.run_pipeline ~level:2 ~disabled:[] p);
             let after = run_ir p in
             match run_ast tu', before, after with
             | Some a, Some b, Some c -> a = b && b = c
             | _ -> true
           end))

(* The single-lex pipeline entries: compile_tu's returned tree and the
   dedup cache must be indistinguishable from plain compile. *)
let compile_pipeline_tests =
  let opts = Simcomp.Compiler.default_options in
  let gen_sources n seed =
    List.init n (fun i -> Ast_gen.gen_source (Rng.create (seed + i)))
  in
  [
    tc "compile_tu returns the tree parse would produce" (fun () ->
        List.iter
          (fun src ->
            match Simcomp.Compiler.compile_tu Simcomp.Compiler.Gcc opts src with
            | Simcomp.Compiler.Compiled _, Some tu ->
              check Alcotest.string "same pretty-printed tree"
                (Pretty.tu_to_string (parse src))
                (Pretty.tu_to_string tu)
            | Simcomp.Compiler.Compiled _, None ->
              Alcotest.fail "compiled outcome must carry the parsed tree"
            | _ -> ())
          (gen_sources 10 500));
    tc "compile_tu parse failure yields no tree" (fun () ->
        match Simcomp.Compiler.compile_tu Simcomp.Compiler.Gcc opts "int main( {" with
        | Simcomp.Compiler.Compile_error _, None -> ()
        | _ -> Alcotest.fail "expected error outcome without a tree");
    tc "compile_cached reproduces compile outcomes and dedups repeats"
      (fun () ->
        let cache = Simcomp.Compiler.cache_create () in
        let srcs = gen_sources 8 900 in
        let srcs = srcs @ srcs in
        (* every source twice *)
        List.iter
          (fun src ->
            let cov_plain = Simcomp.Coverage.create () in
            let plain =
              Simcomp.Compiler.compile ~cov:cov_plain Simcomp.Compiler.Gcc
                opts src
            in
            let cov_cached = Simcomp.Coverage.create () in
            let cached, _ =
              Simcomp.Compiler.compile_cached ~cache ~cov:cov_cached
                Simcomp.Compiler.Gcc opts src
            in
            check Alcotest.bool "identical outcome" true (plain = cached))
          srcs;
        check Alcotest.int "second pass all hits" 8
          (Simcomp.Compiler.cache_hits cache);
        check Alcotest.int "first pass all misses" 8
          (Simcomp.Compiler.cache_misses cache));
    tc "fingerprint dedup decisions match an exact-keyed cache" (fun () ->
        (* a constant fingerprint makes every lookup collide, forcing
           the exact-triple fallback on each probe: hit/miss decisions
           (and so outcomes, coverage, accounting) must be identical to
           the well-distributed default hash *)
        let normal = Simcomp.Compiler.cache_create () in
        let colliding =
          Simcomp.Compiler.cache_create ~fingerprint:(fun _ -> 42) ()
        in
        let srcs = gen_sources 6 1300 in
        let srcs = srcs @ List.rev srcs @ srcs in
        let outcomes cache =
          List.map
            (fun src ->
              fst
                (Simcomp.Compiler.compile_cached ~cache Simcomp.Compiler.Gcc
                   opts src))
            srcs
        in
        check Alcotest.bool "same outcome sequence" true
          (outcomes normal = outcomes colliding);
        check Alcotest.int "same hits"
          (Simcomp.Compiler.cache_hits normal)
          (Simcomp.Compiler.cache_hits colliding);
        check Alcotest.int "same misses"
          (Simcomp.Compiler.cache_misses normal)
          (Simcomp.Compiler.cache_misses colliding);
        check Alcotest.bool "collisions detected" true
          (Simcomp.Compiler.cache_collisions colliding > 0);
        check Alcotest.int "default hash does not collide" 0
          (Simcomp.Compiler.cache_collisions normal));
    tc "epoch clearing keeps decisions correct at tiny capacity" (fun () ->
        (* capacity 2 forces wholesale epoch clears mid-sequence: hits
           become misses, but every returned outcome must still equal
           the uncached compile *)
        let cache = Simcomp.Compiler.cache_create ~capacity:2 () in
        let srcs = gen_sources 5 1400 in
        let srcs = srcs @ srcs @ srcs in
        List.iter
          (fun src ->
            let plain = Simcomp.Compiler.compile Simcomp.Compiler.Gcc opts src in
            let cached, _ =
              Simcomp.Compiler.compile_cached ~cache Simcomp.Compiler.Gcc opts
                src
            in
            check Alcotest.bool "outcome survives epoch clears" true
              (plain = cached))
          srcs);
    tc "batch_compile is indistinguishable from compile_cached" (fun () ->
        let srcs = gen_sources 6 1500 in
        let srcs = srcs @ srcs in
        let cache_a = Simcomp.Compiler.cache_create () in
        let cov_a = Simcomp.Coverage.create () in
        let via_cached =
          List.map
            (fun src ->
              Simcomp.Compiler.compile_cached ~cache:cache_a ~cov:cov_a
                Simcomp.Compiler.Gcc opts src)
            srcs
        in
        let cache_b = Simcomp.Compiler.cache_create () in
        let cov_b = Simcomp.Coverage.create () in
        let batch =
          Simcomp.Compiler.batch_create ~cache:cache_b ~cov:cov_b
            Simcomp.Compiler.Gcc opts
        in
        let via_batch =
          List.map (fun src -> Simcomp.Compiler.batch_compile batch src) srcs
        in
        check Alcotest.bool "same outcomes and trees" true
          (via_cached = via_batch);
        check Alcotest.bool "same coverage" true
          (Simcomp.Coverage.equal cov_a cov_b);
        check Alcotest.int "same hits"
          (Simcomp.Compiler.cache_hits cache_a)
          (Simcomp.Compiler.cache_hits cache_b));
    tc "scratch reuse yields byte-identical assembly" (fun () ->
        (* per-domain scratch buffers (arena, token array, IR vectors)
           are reused across compiles: interleaving other compiles must
           not leak state into a recompile of the same source *)
        let srcs = gen_sources 6 1600 in
        let asm src =
          match Simcomp.Compiler.compile Simcomp.Compiler.Gcc opts src with
          | Simcomp.Compiler.Compiled { asm; _ } -> Some asm
          | _ -> None
        in
        let cold = List.map asm srcs in
        (* scratch is now warm and sized by the largest of the batch *)
        let warm = List.map asm srcs in
        List.iter2
          (fun a b ->
            check Alcotest.(option string) "identical assembly" a b)
          cold warm);
    tc "cache hits replay engine accounting exactly" (fun () ->
        let src = Ast_gen.gen_source (Rng.create 321) in
        let counters engine =
          List.filter
            (function _, Engine.Metrics.Counter _ -> true | _ -> false)
            (Engine.Metrics.snapshot engine.Engine.Ctx.metrics)
        in
        let uncached = Engine.Ctx.create () in
        ignore
          (Simcomp.Compiler.compile ~engine:uncached Simcomp.Compiler.Gcc opts
             src);
        ignore
          (Simcomp.Compiler.compile ~engine:uncached Simcomp.Compiler.Gcc opts
             src);
        let cached_engine = Engine.Ctx.create () in
        let cache = Simcomp.Compiler.cache_create () in
        ignore
          (Simcomp.Compiler.compile_cached ~cache ~engine:cached_engine
             Simcomp.Compiler.Gcc opts src);
        ignore
          (Simcomp.Compiler.compile_cached ~cache ~engine:cached_engine
             Simcomp.Compiler.Gcc opts src);
        (* same compile.total / compile.outcome.* family, plus the
           compile.cached marker on the cached run; opt.pass.* counters
           count real pass executions (like spans) and are legitimately
           absent on a hit *)
        let drop_cached =
          List.filter (fun (name, _) ->
              name <> "compile.cached"
              && not
                   (String.length name >= 9
                   && String.equal (String.sub name 0 9) "opt.pass."))
        in
        check Alcotest.bool "counter families match" true
          (drop_cached (counters uncached)
          = drop_cached (counters cached_engine));
        check Alcotest.bool "cache marker counted" true
          (List.assoc "compile.cached" (counters cached_engine)
          = Engine.Metrics.Counter 1));
    tc "injected hangs trip the compile watchdog" (fun () ->
        let engine = Engine.Ctx.create () in
        let faults =
          Engine.Faults.create
            { Engine.Faults.no_faults with Engine.Faults.compile_hang = 1.0 }
        in
        (match
           Simcomp.Compiler.compile ~engine ~faults Simcomp.Compiler.Gcc opts
             "int main(void) { return 0; }"
         with
        | Simcomp.Compiler.Crashed c ->
          check Alcotest.bool "hang kind" true
            (c.Simcomp.Crash.kind = Simcomp.Crash.Hang);
          check Alcotest.bool "watchdog frame" true
            (List.mem "watchdog_timeout" c.Simcomp.Crash.frames)
        | _ -> Alcotest.fail "expected the watchdog to report a hang");
        check Alcotest.int "hang counted" 1
          (Engine.Metrics.counter_value
             (Engine.Metrics.counter engine.Engine.Ctx.metrics
                "compile.watchdog_hang")));
    tc "cached hangs replay as hangs" (fun () ->
        (* a pathological mutant stays pathological: memoization must
           not resurrect it *)
        let faults =
          Engine.Faults.create
            { Engine.Faults.no_faults with Engine.Faults.compile_hang = 1.0 }
        in
        let cache = Simcomp.Compiler.cache_create () in
        let src = "int main(void) { return 1; }" in
        let once () =
          fst
            (Simcomp.Compiler.compile_cached ~cache ~faults
               Simcomp.Compiler.Gcc opts src)
        in
        (match (once (), once ()) with
        | Simcomp.Compiler.Crashed a, Simcomp.Compiler.Crashed b ->
          check Alcotest.string "same bug id" a.Simcomp.Crash.bug_id
            b.Simcomp.Crash.bug_id
        | _ -> Alcotest.fail "both lookups must replay the hang");
        check Alcotest.int "second lookup hit the cache" 1
          (Simcomp.Compiler.cache_hits cache));
  ]

(* ------------------------------------------------------------------ *)
(* Pass manager                                                        *)
(* ------------------------------------------------------------------ *)

let pass_manager_tests =
  let opts_at ?(disabled = []) ?pass_list level =
    {
      Simcomp.Compiler.default_options with
      opt_level = level;
      disabled_passes = disabled;
      pass_list;
    }
  in
  [
    tc "registry enumerates passes in canonical order" (fun () ->
        check
          Alcotest.(list string)
          "names"
          [ "constfold"; "simplify-cfg"; "dce"; "inline"; "strlen-opt";
            "loop-opt" ]
          (Simcomp.Opt.pass_names ()));
    tc "registering a duplicate pass name is rejected" (fun () ->
        Alcotest.check_raises "duplicate"
          (Invalid_argument "Opt.register: duplicate pass dce") (fun () ->
            Simcomp.Opt.register Simcomp.Opt.dce_pass));
    tc "pipeline specs are golden per level" (fun () ->
        let golden =
          [
            (0, []);
            (1, [ "constfold"; "simplify-cfg"; "dce" ]);
            ( 2,
              [ "constfold"; "simplify-cfg"; "inline"; "strlen-opt";
                "constfold"; "dce" ] );
            ( 3,
              [ "constfold"; "simplify-cfg"; "inline"; "strlen-opt";
                "loop-opt"; "constfold"; "simplify-cfg"; "dce" ] );
          ]
        in
        List.iter
          (fun (level, expected) ->
            check
              Alcotest.(list string)
              (Fmt.str "-O%d" level) expected
              (Simcomp.Compiler.pipeline_of (opts_at level)))
          golden);
    tc "unknown pass in an explicit pipeline is rejected" (fun () ->
        check Alcotest.bool "raises" true
          (try
             ignore
               (Simcomp.Compiler.pipeline_of
                  (opts_at ~pass_list:[ "constfold"; "vectorize" ] 2));
             false
           with Invalid_argument _ -> true));
    tc "disabling a pass equals the explicit pipeline without it" (fun () ->
        let src =
          "int five(void) { return 5; }\n\
           int main(void) { int unused = 1 + 2; return five() + 4; }"
        in
        let spec_minus_dce =
          List.filter
            (fun p -> not (String.equal p "dce"))
            (Simcomp.Compiler.pipeline_of (opts_at 2))
        in
        let outcome opts = Simcomp.Compiler.compile Simcomp.Compiler.Gcc opts src in
        check Alcotest.bool "same outcome" true
          (outcome (opts_at ~disabled:[ "dce" ] 2)
          = outcome (opts_at ~pass_list:spec_minus_dce 2)));
    tc "dump-ir snapshots only the requested pass" (fun () ->
        let src = "int main(void) { int unused = 1 + 2; return 7; }" in
        let steps dump =
          match
            Simcomp.Compiler.compile_passes Simcomp.Compiler.Gcc
              { (opts_at 2) with Simcomp.Compiler.dump_ir = dump }
              src
          with
          | Ok tr -> tr.Simcomp.Compiler.pt_steps
          | Error e -> Alcotest.failf "compile_passes: %s" e
        in
        List.iter
          (fun (st : Simcomp.Compiler.pass_step) ->
            check Alcotest.bool "no IR captured" true
              (st.st_ir_before = None && st.st_ir_after = None))
          (steps Simcomp.Compiler.Dump_none);
        List.iter
          (fun (st : Simcomp.Compiler.pass_step) ->
            check Alcotest.bool "all IR captured" true
              (st.st_ir_before <> None && st.st_ir_after <> None))
          (steps Simcomp.Compiler.Dump_all);
        List.iter
          (fun (st : Simcomp.Compiler.pass_step) ->
            let want = String.equal st.st_pass "dce" in
            check Alcotest.bool "only dce captured" want
              (st.st_ir_before <> None))
          (steps (Simcomp.Compiler.Dump_pass "dce")));
    tc "per-pass run counters follow the spec" (fun () ->
        let engine = Engine.Ctx.create () in
        ignore
          (Simcomp.Compiler.compile ~engine Simcomp.Compiler.Gcc (opts_at 2)
             "int main(void) { return 1 + 2; }");
        let runs name =
          Engine.Metrics.counter_value
            (Engine.Metrics.counter engine.Engine.Ctx.metrics
               (Fmt.str "opt.pass.%s.runs" name))
        in
        check Alcotest.int "constfold twice" 2 (runs "constfold");
        check Alcotest.int "dce once" 1 (runs "dce");
        check Alcotest.int "loop-opt never" 0 (runs "loop-opt"));
    tc "pass-ordering ICE: dce without a prior constfold" (fun () ->
        let src =
          "int main(void) { int a = 1; int b = 2; int c = a < b ? 1 : 2; int \
           d = b < a ? 3 : 4; return a + b + c + d; }"
        in
        (match
           Simcomp.Compiler.compile Simcomp.Compiler.Gcc
             (opts_at ~disabled:[ "constfold" ] 2)
             src
         with
        | Simcomp.Compiler.Crashed c ->
          check Alcotest.string "bug id" "gcc-dce-unfolded"
            c.Simcomp.Crash.bug_id
        | _ -> Alcotest.fail "expected the pass-ordering ICE");
        match Simcomp.Compiler.compile Simcomp.Compiler.Gcc (opts_at 2) src with
        | Simcomp.Compiler.Compiled _ -> ()
        | _ -> Alcotest.fail "default pipeline must stay clean");
    tc "pass-ordering ICE: strlen-opt without a prior inline" (fun () ->
        let src =
          "int f(void) { return 1; }\n\
           int main(void) { return f() + f(); }"
        in
        (match
           Simcomp.Compiler.compile Simcomp.Compiler.Clang
             (opts_at ~disabled:[ "inline" ] 2)
             src
         with
        | Simcomp.Compiler.Crashed c ->
          check Alcotest.string "bug id" "clang-strlen-before-inline"
            c.Simcomp.Crash.bug_id
        | _ -> Alcotest.fail "expected the pass-ordering ICE");
        match
          Simcomp.Compiler.compile Simcomp.Compiler.Clang (opts_at 2) src
        with
        | Simcomp.Compiler.Compiled _ -> ()
        | _ -> Alcotest.fail "default pipeline must stay clean");
    tc "pass-homed ICE is masked by disabling its home pass" (fun () ->
        let src =
          "static char buffer[32];\n\
           const char tag = 1;\n\
           int test4(void) { return sprintf(buffer, \"%s\", buffer); }\n\
           int main(void) { return test4(); }"
        in
        (match Simcomp.Compiler.compile Simcomp.Compiler.Gcc (opts_at 2) src with
        | Simcomp.Compiler.Crashed c ->
          check Alcotest.string "bug id" "gcc-strlen-range"
            c.Simcomp.Crash.bug_id
        | _ -> Alcotest.fail "expected gcc-strlen-range");
        match
          Simcomp.Compiler.compile Simcomp.Compiler.Gcc
            (opts_at ~disabled:[ "strlen-opt" ] 2)
            src
        with
        | Simcomp.Compiler.Crashed c ->
          Alcotest.failf "still crashed: %s" c.Simcomp.Crash.bug_id
        | _ -> ());
    tc "random_options draws from the registry" (fun () ->
        let rng = Rng.create 11 in
        for _ = 1 to 50 do
          let o = Simcomp.Compiler.random_options rng in
          List.iter
            (fun p ->
              check Alcotest.bool "known pass" true
                (Option.is_some (Simcomp.Opt.find_pass p)))
            o.Simcomp.Compiler.disabled_passes
        done);
  ]

let () =
  Alcotest.run "simcomp"
    [
      ("coverage", coverage_tests);
      ("coverage-bitmap-differential", bitmap_differential_tests);
      ("compile-pipeline", compile_pipeline_tests);
      ("features", feature_tests);
      ("interp", interp_tests);
      ("ir", ir_tests);
      ("opt", opt_tests);
      ("pass-manager", pass_manager_tests);
      ("backend", backend_tests);
      ("bugs-and-pipeline", bug_tests @ pipeline_props);
      ("differential", differential_tests @ [ mutant_differential ]);
    ]
