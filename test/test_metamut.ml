(* Tests for the MetaMut framework: prompts, the LLM oracle, validation
   goals, and the end-to-end pipeline. *)

open Cparse

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let prompt_tests =
  [
    tc "invention prompt lists actions and structures" (fun () ->
        let p = Metamut.Prompts.invention_prompt ~history:[ "Ret2V" ] in
        let contains h n =
          let lh = String.length h and ln = String.length n in
          let rec go i = i + ln <= lh && (String.sub h i ln = n || go (i + 1)) in
          go 0
        in
        check Alcotest.bool "action" true (contains p "Modify");
        check Alcotest.bool "structure" true (contains p "BinaryOperator");
        check Alcotest.bool "history" true (contains p "Ret2V");
        check Alcotest.bool "creativity hint" true
          (contains p "not limited to"));
    tc "template has the six steps" (fun () ->
        let t = Metamut.Prompts.implementation_template in
        let contains h n =
          let lh = String.length h and ln = String.length n in
          let rec go i = i + ln <= lh && (String.sub h i ln = n || go (i + 1)) in
          go 0
        in
        List.iter
          (fun step -> check Alcotest.bool step true (contains t step))
          [ "Step 1"; "Step 2"; "Step 3"; "Step 4"; "Step 5"; "Step 6" ]);
    tc "action and structure lists are non-trivial" (fun () ->
        check Alcotest.bool "actions" true
          (List.length Metamut.Prompts.actions >= 11);
        check Alcotest.bool "structures" true
          (List.length Metamut.Prompts.program_structures >= 20));
  ]

let oracle_tests =
  [
    tc "invention avoids duplicates while the pool lasts" (fun () ->
        let llm = Metamut.Llm_sim.create ~seed:3 () in
        let pool = Mutators.Registry.unsupervised in
        let names = ref [] in
        for _ = 1 to 30 do
          let inv, _ = Metamut.Llm_sim.invent llm ~pool in
          names := inv.Metamut.Llm_sim.i_name :: !names
        done;
        let known =
          List.filter
            (fun n -> List.exists (fun m -> m.Mutators.Mutator.name = n) pool)
            !names
        in
        check Alcotest.int "no duplicate known inventions"
          (List.length known)
          (List.length (List.sort_uniq compare known)));
    tc "usage stays within calibrated bounds" (fun () ->
        let rng = Rng.create 4 in
        for _ = 1 to 200 do
          let u = Metamut.Llm_sim.invention_usage rng in
          let t = Metamut.Llm_sim.tokens u in
          check Alcotest.bool "invention tokens" true (t >= 359 && t <= 2240)
        done);
    tc "defect sampling is sometimes empty (first-shot correct)" (fun () ->
        let rng = Rng.create 5 in
        let empty = ref 0 in
        for _ = 1 to 300 do
          if Metamut.Llm_sim.sample_defects rng = [] then incr empty
        done;
        (* "nearly half of the mutators are correct on the first attempt" *)
        check Alcotest.bool "roughly half" true (!empty > 100 && !empty < 200));
    tc "fix removes exactly the targeted defect" (fun () ->
        let llm = Metamut.Llm_sim.create ~seed:6 () in
        let inv, _ = Metamut.Llm_sim.invent llm ~pool:Mutators.Registry.core in
        let impl =
          {
            Metamut.Llm_sim.im_invention = inv;
            im_defects =
              [ Metamut.Llm_sim.D_not_compile; Metamut.Llm_sim.D_compile_error_mutant ];
            im_flaw = Metamut.Llm_sim.F_none;
          }
        in
        (* retry until the stochastic fix succeeds *)
        let rec fix_until impl n =
          if n > 50 then Alcotest.fail "fix never succeeded"
          else
            let impl', _, ok = Metamut.Llm_sim.fix llm impl ~goal:1 in
            if ok then impl' else fix_until impl n |> fun _ -> fix_until impl (n + 1)
        in
        let impl' = fix_until impl 0 in
        check Alcotest.bool "goal-1 defect gone" false
          (List.mem Metamut.Llm_sim.D_not_compile impl'.Metamut.Llm_sim.im_defects);
        check Alcotest.bool "goal-6 defect kept" true
          (List.mem Metamut.Llm_sim.D_compile_error_mutant
             impl'.Metamut.Llm_sim.im_defects));
    tc "generated unit tests compile" (fun () ->
        let llm = Metamut.Llm_sim.create ~seed:7 () in
        let tests = Metamut.Llm_sim.generate_tests llm ~count:4 in
        check Alcotest.bool "several" true (List.length tests > 10);
        List.iter
          (fun tu ->
            check Alcotest.bool "typechecks" true
              (Typecheck.check tu).Typecheck.r_ok)
          tests);
  ]

let validation_tests =
  [
    tc "flagged defects are reported simplest-first" (fun () ->
        let llm = Metamut.Llm_sim.create ~seed:8 () in
        let inv, _ = Metamut.Llm_sim.invent llm ~pool:Mutators.Registry.core in
        let impl =
          {
            Metamut.Llm_sim.im_invention = inv;
            im_defects =
              [ Metamut.Llm_sim.D_compile_error_mutant; Metamut.Llm_sim.D_not_compile ];
            im_flaw = Metamut.Llm_sim.F_none;
          }
        in
        let tests = Metamut.Llm_sim.generate_tests llm ~count:2 in
        match Metamut.Validation.validate ~rng:(Rng.create 1) impl tests with
        | Metamut.Validation.Fail gv ->
          check Alcotest.int "goal 1 first" 1 gv.Metamut.Validation.gv_goal
        | Metamut.Validation.Pass -> Alcotest.fail "should fail");
    tc "clean corpus mutator passes validation" (fun () ->
        let llm = Metamut.Llm_sim.create ~seed:9 () in
        let m =
          Option.get (Mutators.Registry.find_opt "SwapBinaryOperands")
        in
        let impl =
          {
            Metamut.Llm_sim.im_invention =
              {
                Metamut.Llm_sim.i_name = m.Mutators.Mutator.name;
                i_description = m.Mutators.Mutator.description;
                i_creative = false;
                i_intended = Some m;
              };
            im_defects = [];
            im_flaw = Metamut.Llm_sim.F_none;
          }
        in
        let tests = Metamut.Llm_sim.generate_tests llm ~count:4 in
        match Metamut.Validation.validate ~rng:(Rng.create 2) impl tests with
        | Metamut.Validation.Pass -> ()
        | Metamut.Validation.Fail gv ->
          Alcotest.failf "failed goal %d: %s" gv.Metamut.Validation.gv_goal
            gv.Metamut.Validation.gv_message);
    tc "goal 6 catches a mutator that breaks compilation" (fun () ->
        (* a deliberately broken mutator: renames one variable use without
           declaring the new name *)
        let broken =
          Mutators.Mutator.make ~name:"BrokenRenamer"
            ~description:"renames a use to an undeclared identifier"
            ~category:Mutators.Mutator.Variable
            ~provenance:Mutators.Mutator.Unsupervised
            (fun ctx ->
              let idents = Uast.Query.idents ctx.Uast.Ctx.tu in
              match Uast.Ctx.rand_element ctx idents with
              | Some e ->
                Some
                  (Visit.replace_expr ctx.Uast.Ctx.tu ~eid:e.Ast.eid
                     ~repl:(Ast.ident "__undeclared__"))
              | None -> None)
        in
        let llm = Metamut.Llm_sim.create ~seed:10 () in
        let impl =
          {
            Metamut.Llm_sim.im_invention =
              {
                Metamut.Llm_sim.i_name = "BrokenRenamer";
                i_description = "broken";
                i_creative = false;
                i_intended = Some broken;
              };
            im_defects = [];
            im_flaw = Metamut.Llm_sim.F_none;
          }
        in
        let tests = Metamut.Llm_sim.generate_tests llm ~count:4 in
        match Metamut.Validation.validate ~rng:(Rng.create 3) impl tests with
        | Metamut.Validation.Fail gv ->
          check Alcotest.int "goal 6" 6 gv.Metamut.Validation.gv_goal
        | Metamut.Validation.Pass -> Alcotest.fail "broken mutator passed");
    tc "manual review rejects flawed implementations" (fun () ->
        let impl flaw =
          {
            Metamut.Llm_sim.im_invention =
              {
                Metamut.Llm_sim.i_name = "X";
                i_description = "x";
                i_creative = false;
                i_intended = None;
              };
            im_defects = [];
            im_flaw = flaw;
          }
        in
        (match
           Metamut.Validation.manual_review
             (impl Metamut.Llm_sim.F_mismatched_implementation)
             ~accepted_names:[]
         with
        | Metamut.Validation.Rejected _ -> ()
        | Metamut.Validation.Accepted -> Alcotest.fail "accepted mismatch");
        match
          Metamut.Validation.manual_review (impl Metamut.Llm_sim.F_none)
            ~accepted_names:[ "X" ]
        with
        | Metamut.Validation.Rejected _ -> () (* duplicate *)
        | Metamut.Validation.Accepted -> Alcotest.fail "accepted duplicate");
  ]

let pipeline_tests =
  [
    tc "run_many accounts for every invocation" (fun () ->
        let runs = Metamut.Pipeline.run_many ~seed:21 ~n:40 () in
        check Alcotest.int "count" 40 (List.length runs);
        let s = Metamut.Pipeline.summarize runs in
        check Alcotest.int "partition" 40
          (s.Metamut.Pipeline.s_system_errors + s.s_valid
          + s.s_invalid_refinement + s.s_invalid_manual));
    tc "pipeline is deterministic per seed" (fun () ->
        let a = Metamut.Pipeline.summarize (Metamut.Pipeline.run_many ~seed:5 ~n:25 ()) in
        let b = Metamut.Pipeline.summarize (Metamut.Pipeline.run_many ~seed:5 ~n:25 ()) in
        check Alcotest.bool "same" true (a = b));
    tc "valid runs yield corpus mutators" (fun () ->
        let runs = Metamut.Pipeline.run_many ~seed:22 ~n:30 () in
        List.iter
          (fun r ->
            match r.Metamut.Pipeline.r_outcome with
            | Metamut.Pipeline.Valid m ->
              check Alcotest.bool "in corpus" true
                (List.exists
                   (fun m' -> m'.Mutators.Mutator.name = m.Mutators.Mutator.name)
                   Mutators.Registry.core)
            | _ -> ())
          runs);
    tc "system errors cost nothing" (fun () ->
        let runs = Metamut.Pipeline.run_many ~seed:23 ~n:50 () in
        List.iter
          (fun r ->
            if r.Metamut.Pipeline.r_outcome = Metamut.Pipeline.System_error then
              check Alcotest.int "zero tokens" 0
                (Metamut.Pipeline.total_cost r).Metamut.Pipeline.sc_tokens)
          runs);
    tc "completed runs consume at least two QA rounds" (fun () ->
        let runs = Metamut.Pipeline.run_many ~seed:24 ~n:30 () in
        List.iter
          (fun r ->
            if r.Metamut.Pipeline.r_outcome <> Metamut.Pipeline.System_error then
              check Alcotest.bool "rounds >= 2" true
                ((Metamut.Pipeline.total_cost r).Metamut.Pipeline.sc_qa_rounds >= 2))
          runs);
    tc "dollars scale with tokens" (fun () ->
        let d = Metamut.Pipeline.dollars_of_tokens 8595 in
        check Alcotest.bool "about 50 cents" true (d > 0.4 && d < 0.6));
    tc "stats computes min/max/median/mean" (fun () ->
        let mn, mx, md, mean = Metamut.Pipeline.stats [ 1.; 2.; 3.; 4.; 10. ] in
        check (Alcotest.float 0.001) "min" 1. mn;
        check (Alcotest.float 0.001) "max" 10. mx;
        check (Alcotest.float 0.001) "median" 3. md;
        check (Alcotest.float 0.001) "mean" 4. mean);
    tc "bug-fix classes stay within goals 1-6" (fun () ->
        let runs = Metamut.Pipeline.run_many ~seed:25 ~n:30 () in
        List.iter
          (fun r ->
            List.iter
              (fun (g, n) ->
                check Alcotest.bool "goal range" true (g >= 1 && g <= 6);
                check Alcotest.bool "count positive" true (n > 0))
              r.Metamut.Pipeline.r_bugs_fixed)
          runs);
    tc "hang defects resist fixing" (fun () ->
        (* a mutator whose only defect is a hang almost always fails
           refinement, matching the paper's observation *)
        let llm = Metamut.Llm_sim.create ~seed:31 () in
        let m = List.hd Mutators.Registry.unsupervised in
        let impl =
          {
            Metamut.Llm_sim.im_invention =
              {
                Metamut.Llm_sim.i_name = m.Mutators.Mutator.name;
                i_description = "d";
                i_creative = false;
                i_intended = Some m;
              };
            im_defects = [ Metamut.Llm_sim.D_hangs ];
            im_flaw = Metamut.Llm_sim.F_none;
          }
        in
        let fixed = ref 0 in
        for _ = 1 to 30 do
          let _, _, ok = Metamut.Llm_sim.fix llm impl ~goal:2 in
          if ok then incr fixed
        done;
        check Alcotest.bool "rarely fixed" true (!fixed <= 6));
  ]

let retry_tests =
  [
    tc "most throttled invocations recover within the default budget" (fun () ->
        (* acceptance bar: >= 80 % of invocations that hit at least one
           System_error end in a real outcome (4 attempts at the paper's
           0.24 rate predict ~98.6 %) *)
        let runs = Metamut.Pipeline.run_many ~seed:41 ~n:100 () in
        let hit =
          List.filter (fun r -> r.Metamut.Pipeline.r_attempts > 1) runs
        in
        let recovered =
          List.filter
            (fun r ->
              r.Metamut.Pipeline.r_outcome <> Metamut.Pipeline.System_error)
            hit
        in
        check Alcotest.bool "throttles occurred" true (hit <> []);
        check Alcotest.bool "recovery rate >= 0.8" true
          (float_of_int (List.length recovered)
           /. float_of_int (List.length hit)
          >= 0.8));
    tc "backoff waits match the retry counters" (fun () ->
        let engine = Engine.Ctx.create () in
        let runs = Metamut.Pipeline.run_many ~seed:42 ~engine ~n:60 () in
        let charged =
          List.fold_left
            (fun acc r ->
              acc +. r.Metamut.Pipeline.r_retry.Metamut.Pipeline.sc_wait_s)
            0. runs
        in
        let wait_ms =
          Engine.Metrics.counter_value
            (Engine.Metrics.counter engine.Engine.Ctx.metrics
               "pipeline.retry.wait_ms")
        in
        let waits =
          List.fold_left
            (fun acc r -> acc + r.Metamut.Pipeline.r_attempts - 1)
            0 runs
        in
        (* the counter truncates each wait to whole milliseconds *)
        check Alcotest.bool "accounted" true
          (charged -. (float_of_int wait_ms /. 1000.) >= 0.
          && charged -. (float_of_int wait_ms /. 1000.)
             <= 0.001 *. float_of_int waits);
        List.iter
          (fun r ->
            check Alcotest.bool "waited iff retried" true
              (r.Metamut.Pipeline.r_retry.Metamut.Pipeline.sc_wait_s > 0.
              = (r.Metamut.Pipeline.r_attempts > 1)))
          runs);
    tc "retrying keeps the pipeline deterministic per seed" (fun () ->
        let go () =
          List.map
            (fun r ->
              ( r.Metamut.Pipeline.r_name,
                r.Metamut.Pipeline.r_attempts,
                (Metamut.Pipeline.total_cost r).Metamut.Pipeline.sc_tokens,
                r.Metamut.Pipeline.r_retry.Metamut.Pipeline.sc_wait_s ))
            (Metamut.Pipeline.run_many ~seed:43 ~n:30 ())
        in
        check Alcotest.bool "identical" true (go () = go ()));
    tc "a permanent throttle exhausts the budget" (fun () ->
        let faults =
          Engine.Faults.create
            { Engine.Faults.no_faults with Engine.Faults.llm_throttle = 1.0 }
        in
        let cfg =
          { Metamut.Pipeline.default_config with Metamut.Pipeline.faults = Some faults }
        in
        let runs = Metamut.Pipeline.run_many ~cfg ~seed:44 ~n:5 () in
        List.iter
          (fun r ->
            check Alcotest.bool "system error" true
              (r.Metamut.Pipeline.r_outcome = Metamut.Pipeline.System_error);
            check Alcotest.int "all attempts used"
              cfg.Metamut.Pipeline.retry.Engine.Retry.max_attempts
              r.Metamut.Pipeline.r_attempts;
            check Alcotest.bool "waits charged" true
              (r.Metamut.Pipeline.r_retry.Metamut.Pipeline.sc_wait_s > 0.))
          runs);
    tc "a unit retry budget restores the paper's behaviour" (fun () ->
        let cfg =
          {
            Metamut.Pipeline.default_config with
            Metamut.Pipeline.retry =
              {
                Engine.Retry.default_policy with
                Engine.Retry.max_attempts = 1;
              };
          }
        in
        let runs = Metamut.Pipeline.run_many ~cfg ~seed:45 ~n:100 () in
        let errors =
          List.length
            (List.filter
               (fun r ->
                 r.Metamut.Pipeline.r_outcome = Metamut.Pipeline.System_error)
               runs)
        in
        List.iter
          (fun r ->
            check Alcotest.int "single attempt" 1 r.Metamut.Pipeline.r_attempts)
          runs;
        (* binomial n=100 p=0.24: stay within a generous band *)
        check Alcotest.bool "throttle rate modelled" true
          (errors >= 10 && errors <= 40));
  ]

let () =
  Alcotest.run "metamut"
    [
      ("prompts", prompt_tests);
      ("oracle", oracle_tests);
      ("validation", validation_tests);
      ("pipeline", pipeline_tests);
      ("retry", retry_tests);
    ]
