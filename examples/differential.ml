(* Differential testing of the optimizer: compile generated programs at
   every -O level and check the pipeline agrees on success/failure, then
   execute the programs in the reference interpreter — the validation
   harness MetaMut uses for mutants.

     dune exec examples/differential.exe *)

let () =
  let rng = Cparse.Rng.create 7 in
  let n = 40 in
  let disagreements = ref 0 in
  Fmt.pr "compiling %d generated programs at -O0..-O3 on both compilers@." n;
  for i = 1 to n do
    let src = Cparse.Ast_gen.gen_source rng in
    let outcomes =
      List.concat_map
        (fun compiler ->
          List.map
            (fun opt_level ->
              let o =
                Simcomp.Compiler.compile compiler
                  { Simcomp.Compiler.default_options with opt_level }
                  src
              in
              Simcomp.Compiler.outcome_is_success o)
            [ 0; 1; 2; 3 ])
        [ Simcomp.Compiler.Gcc; Simcomp.Compiler.Clang ]
    in
    let all_same = List.for_all (fun b -> b = List.hd outcomes) outcomes in
    if not all_same then begin
      incr disagreements;
      Fmt.pr "program %d: compilers/levels disagree (a latent bug fired)@." i
    end
  done;
  Fmt.pr "programs with level-dependent outcomes: %d/%d@." !disagreements n;

  (* interpreter as ground truth on a known program *)
  let src =
    "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n\
     int main(void) { printf(\"%d\\n\", fib(12)); return 0; }"
  in
  (match Simcomp.Interp.run_src src with
  | Ok o ->
    Fmt.pr "reference interpreter: fib(12) prints %s (exit %d)@."
      (String.trim o.Simcomp.Interp.o_output)
      o.Simcomp.Interp.o_exit
  | Error e -> Fmt.pr "interpreter parse error: %s@." e);

  (* and it catches mutants that break at runtime *)
  let bad = "int main(void) { int a[2]; return a[9]; }" in
  match Simcomp.Interp.run_src bad with
  | Ok o ->
    Fmt.pr "out-of-bounds mutant: aborted=%b (as the validation loop expects)@."
      o.Simcomp.Interp.o_aborted
  | Error e -> Fmt.pr "parse error: %s@." e
