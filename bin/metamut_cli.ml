(* The metamut command-line interface.

     metamut list-mutators            enumerate the corpus
     metamut mutate FILE              apply a mutator to a C file
     metamut compile FILE             run the simulated compiler
     metamut fuzz                     run uCFuzz (Algorithm 1)
     metamut generate                 run the MetaMut generation pipeline
     metamut campaign                 run the RQ1 comparison *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* metrics rendering (shared by fuzz / generate / campaign)            *)
(* ------------------------------------------------------------------ *)

let chop_prefix ~prefix s =
  String.sub s (String.length prefix) (String.length s - String.length prefix)

(* Per-stage span timings: one row per span histogram. *)
let render_spans (ctx : Engine.Ctx.t) =
  let spans =
    List.filter_map
      (function
        | name, Engine.Metrics.Histogram { sum; total; _ }
          when String.starts_with ~prefix:"span." name ->
          Some (chop_prefix ~prefix:"span." name, total, sum)
        | _ -> None)
      (Engine.Metrics.snapshot ctx.Engine.Ctx.metrics)
  in
  if spans <> [] then begin
    let t =
      Report.Table.create ~title:"Span timings"
        ~header:[ "span"; "count"; "total ms"; "mean us" ]
    in
    List.iter
      (fun (name, total, sum) ->
        Report.Table.add_row t
          [
            name;
            string_of_int total;
            Fmt.str "%.1f" (sum /. 1e6);
            Fmt.str "%.1f"
              (if total = 0 then 0. else sum /. float_of_int total /. 1e3);
          ])
      spans;
    Report.Table.print t
  end

(* Counter families rendered as a two-column table.  [exclude] drops
   sub-families rendered as their own table (suffixes, like [prefix]). *)
let render_counter_family (ctx : Engine.Ctx.t) ?(exclude = []) ~title ~prefix ()
    =
  let rows =
    Engine.Metrics.counters_with_prefix ctx.Engine.Ctx.metrics ~prefix
    |> List.filter (fun (name, _) ->
           not
             (List.exists
                (fun p -> String.starts_with ~prefix:p name)
                exclude))
  in
  if rows <> [] then begin
    let t = Report.Table.create ~title ~header:[ "name"; "count" ] in
    List.iter
      (fun (name, n) -> Report.Table.add_row t [ name; string_of_int n ])
      rows;
    Report.Table.print t
  end

(* Per-mutator accept/reject counters, sorted by acceptance. *)
let render_mutator_counters (ctx : Engine.Ctx.t) =
  let reg = ctx.Engine.Ctx.metrics in
  let family prefix = Engine.Metrics.counters_with_prefix reg ~prefix in
  let attempts = family "mucfuzz.attempt." in
  if attempts <> [] then begin
    let get rows name =
      Option.value ~default:0 (List.assoc_opt name rows)
    in
    let accepts = family "mucfuzz.accept."
    and rejects = family "mucfuzz.reject."
    and inapplicable = family "mucfuzz.inapplicable." in
    let rows =
      List.map
        (fun (name, att) ->
          (name, att, get accepts name, get rejects name,
           get inapplicable name))
        attempts
      |> List.sort (fun (n1, _, a1, _, _) (n2, _, a2, _, _) ->
             compare (-a1, n1) (-a2, n2))
    in
    let t =
      Report.Table.create ~title:"Per-mutator accept/reject"
        ~header:[ "mutator"; "attempts"; "accepts"; "rejects"; "n/a" ]
    in
    List.iter
      (fun (name, att, acc, rej, na) ->
        Report.Table.add_row t
          [
            name; string_of_int att; string_of_int acc; string_of_int rej;
            string_of_int na;
          ])
      rows;
    Report.Table.print t
  end

let render_metrics (ctx : Engine.Ctx.t) =
  render_spans ctx;
  render_counter_family ctx ~title:"Compile outcomes" ~prefix:"compile." ();
  render_counter_family ctx ~title:"Per-pass activity" ~prefix:"opt.pass." ();
  render_counter_family ctx ~title:"Bisection" ~prefix:"bisect." ();
  render_counter_family ctx ~title:"Pipeline outcomes"
    ~prefix:"pipeline.outcome." ();
  render_counter_family ctx ~title:"Pipeline retry" ~prefix:"pipeline.retry."
    ();
  render_counter_family ctx ~title:"Pipeline counters" ~prefix:"pipeline."
    ~exclude:[ "outcome."; "retry." ] ();
  render_counter_family ctx ~title:"Fault injection" ~prefix:"faults." ();
  render_counter_family ctx ~title:"Scheduler supervision" ~prefix:"scheduler."
    ();
  render_counter_family ctx ~title:"Shard supervision" ~prefix:"shard." ();
  render_counter_family ctx ~title:"Checkpointing" ~prefix:"checkpoint." ();
  render_mutator_counters ctx

let metrics_flag =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Collect engine metrics (spans, counters) and print them.")

(* --telemetry DIR: the export layer (Chrome trace, Prometheus/JSON
   metrics snapshots, GC probes, post-run report). *)
let telemetry_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"DIR"
        ~doc:
          "Write telemetry artifacts under $(docv): $(b,trace.jsonl) (Chrome \
           trace-event JSON, loadable in Perfetto), $(b,metrics.prom) \
           (Prometheus text exposition), $(b,metrics.json), and \
           $(b,campaign-report.md).  Snapshots refresh periodically and at \
           exit.  Enabling telemetry never changes fuzz results.")

(* --status: the live stderr status line.  Forced by the flag, automatic
   on an interactive terminal, and always off when stderr is a pipe (CI
   logs stay clean). *)
let status_flag =
  Arg.(
    value & flag
    & info [ "status" ]
        ~doc:
          "Force the live status line (execs/s, covered edges, crashes, \
           plateau) on stderr.  On by default when stderr is a terminal.")

let want_status forced = forced || Unix.isatty Unix.stderr

(* --serve ADDR: the live scrape plane.  The campaign polls the socket
   at natural pause points; a slow or stalled scraper can never wedge
   the run. *)
let serve_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "serve" ] ~docv:"ADDR"
        ~doc:
          "Serve live observability endpoints while the campaign runs: \
           $(b,/metrics) (Prometheus text), $(b,/status.json) (totals, \
           per-shard heartbeats, quarantines), $(b,/healthz) (503 once \
           the circuit breaker trips), $(b,/series.json) (coverage time \
           series).  $(docv) is $(b,HOST:PORT) (port 0 = ephemeral; the \
           bound address is printed to stderr) or a filesystem path \
           (Unix-domain socket).  Polled, never threaded: serving never \
           changes fuzz results.")

(* --log FILE[:LEVEL]: structured JSON-lines log of supervision events
   (lease verdicts, retries, fault injections, quarantines, checkpoint
   saves).  Bodies are deterministic: no wall clock, seq assigned at
   render after grouping by scope. *)
let log_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "log" ] ~docv:"FILE[:LEVEL]"
        ~doc:
          "Write a structured JSON-lines event log to $(i,FILE) at exit \
           ($(i,LEVEL) one of debug, info, warn, error; default info).  \
           Records carry a monotonic $(b,seq), not a wall clock, so the \
           log body is byte-identical across $(b,--jobs) and \
           $(b,--shards) counts.")

let parse_log_spec spec =
  Option.map
    (fun s ->
      match Engine.Log.parse_spec s with
      | Ok v -> v
      | Error e -> Fmt.failwith "--log: %s" e)
    spec

let start_serve (engine : Engine.Ctx.t option) addr =
  Option.map
    (fun addr ->
      (* callers create the engine whenever --serve is given, so the
         server scrapes the same registry the campaign writes *)
      let e =
        match engine with
        | Some e -> e
        | None -> Fmt.failwith "--serve: internal: no engine context"
      in
      match Engine.Serve.listen ~addr e with
      | Ok s ->
        Fmt.epr "serving on %s@." (Engine.Serve.bound_addr s);
        s
      | Error msg -> Fmt.failwith "--serve: %s" msg)
    addr

(* Smoke tests scrape the final registry after the run; the env var
   keeps the socket up that long without a flag on every invocation. *)
let serve_shutdown srv =
  Option.iter
    (fun s ->
      Engine.Serve.set_done s;
      let linger =
        match Sys.getenv_opt "METAMUT_SERVE_LINGER" with
        | Some v -> ( match float_of_string_opt v with Some f -> f | None -> 0.)
        | None -> 0.
      in
      if linger > 0. then Engine.Serve.linger s ~seconds:linger;
      Engine.Serve.close s)
    srv

(* --faults / --fault-seed, shared by fuzz / generate / campaign.  The
   spec falls back to METAMUT_FAULTS so CI can fault a whole run without
   touching each command line. *)
let faults_term =
  let spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Fault-injection spec: comma-separated site=rate pairs over the \
             in-process sites llm, hang, crash, io and the shard-layer \
             chaos sites frame, stall, oom, coord (e.g. \
             $(b,llm=0.3,hang=0.05,crash=0.2,io=0.1) or \
             $(b,frame=0.05,oom=0.01)); $(b,off) disables.  Shard sites \
             garble/stall worker frames, OOM-kill workers at lease start, \
             and crash-restart the coordinator; they only act under \
             $(b,campaign --shards).  Defaults to $(b,METAMUT_FAULTS) when \
             set.")
  in
  let fseed =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-seed" ] ~docv:"N"
          ~doc:
            "Seed of the fault-decision streams (default \
             $(b,METAMUT_FAULT_SEED), or 0).")
  in
  let make spec fseed =
    let config =
      match spec with
      | Some s -> (
        match Engine.Faults.parse_spec s with
        | Ok c -> Some c
        | Error e -> Fmt.failwith "--faults: %s" e)
      | None -> Engine.Faults.config_from_env ()
    in
    match config with
    | None -> None
    | Some c when c = Engine.Faults.no_faults -> None
    | Some c ->
      let seed =
        match fseed with
        | Some s -> s
        | None -> Engine.Faults.seed_from_env ()
      in
      Some (Engine.Faults.create ~seed c)
  in
  Term.(const make $ spec $ fseed)

(* ------------------------------------------------------------------ *)
(* list-mutators                                                       *)
(* ------------------------------------------------------------------ *)

let list_mutators extended =
  let corpus =
    if extended then Mutators.Registry.extended else Mutators.Registry.core
  in
  List.iter
    (fun m ->
      Fmt.pr "%-36s %-10s %-12s %s@." m.Mutators.Mutator.name
        (Mutators.Mutator.category_to_string m.Mutators.Mutator.category)
        (Mutators.Mutator.provenance_to_string m.Mutators.Mutator.provenance)
        (if m.Mutators.Mutator.creative then "creative" else ""))
    corpus;
  Fmt.pr "%d mutators@." (List.length corpus)

let list_cmd =
  let extended =
    Arg.(value & flag & info [ "extended" ] ~doc:"Include extension mutators.")
  in
  Cmd.v
    (Cmd.info "list-mutators" ~doc:"List the mutator corpus")
    Term.(const list_mutators $ extended)

(* ------------------------------------------------------------------ *)
(* mutate                                                              *)
(* ------------------------------------------------------------------ *)

let mutate file mutator_name seed =
  let src = read_file file in
  let rng = Cparse.Rng.create seed in
  let m =
    match mutator_name with
    | Some n -> (
      match Mutators.Registry.find_opt n with
      | Some m -> m
      | None -> Fmt.failwith "unknown mutator %s" n)
    | None -> Cparse.Rng.choose rng Mutators.Registry.core
  in
  match Mutators.Mutator.apply_src m ~rng src with
  | Some mutant ->
    Fmt.epr "// mutated by %s@." m.Mutators.Mutator.name;
    print_string mutant
  | None ->
    Fmt.epr "mutator %s not applicable (or file does not parse)@."
      m.Mutators.Mutator.name;
    exit 1

let mutate_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let mname =
    Arg.(
      value
      & opt (some string) None
      & info [ "m"; "mutator" ] ~doc:"Mutator name (random when omitted).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.")
  in
  Cmd.v
    (Cmd.info "mutate" ~doc:"Apply a mutator to a C file")
    Term.(const mutate $ file $ mname $ seed)

(* ------------------------------------------------------------------ *)
(* compile                                                             *)
(* ------------------------------------------------------------------ *)

let compiler_conv =
  Arg.enum [ ("gcc", Simcomp.Compiler.Gcc); ("clang", Simcomp.Compiler.Clang) ]

(* Shared pass-pipeline flags: -O, --fno PASS (repeatable), --passes. *)
let options_term =
  let opt = Arg.(value & opt int 2 & info [ "O" ] ~doc:"Optimization level.") in
  let fno =
    Arg.(
      value & opt_all string []
      & info [ "fno" ] ~docv:"PASS" ~doc:"Disable a pass (repeatable).")
  in
  let passes =
    Arg.(
      value
      & opt (some (list ~sep:',' string)) None
      & info [ "passes" ] ~docv:"LIST"
          ~doc:"Explicit comma-separated pass pipeline overriding the -O spec.")
  in
  let build opt_level disabled_passes pass_list =
    {
      Simcomp.Compiler.default_options with
      opt_level;
      disabled_passes;
      pass_list;
    }
  in
  Term.(const build $ opt $ fno $ passes)

let dump_ir_term =
  let dump_conv =
    Arg.conv
      ( (fun s ->
          Ok
            (if String.equal s "" || String.equal s "all" then
               Simcomp.Compiler.Dump_all
             else Simcomp.Compiler.Dump_pass s)),
        fun ppf d ->
          Fmt.string ppf
            (match d with
            | Simcomp.Compiler.Dump_none -> "none"
            | Simcomp.Compiler.Dump_all -> "all"
            | Simcomp.Compiler.Dump_pass p -> p) )
  in
  Arg.(
    value
    & opt ~vopt:Simcomp.Compiler.Dump_all dump_conv Simcomp.Compiler.Dump_none
    & info [ "dump-ir" ] ~docv:"PASS"
        ~doc:"Print IR before/after each pass (or only $(docv)).")

let compile file compiler options dump_ir emit_ir =
  let src = read_file file in
  let options = { options with Simcomp.Compiler.dump_ir } in
  let dumping = dump_ir <> Simcomp.Compiler.Dump_none in
  if emit_ir || dumping then begin
    match Simcomp.Compiler.compile_passes compiler options src with
    | Error e -> Fmt.failwith "%s" e
    | Ok tr ->
      List.iter
        (fun (st : Simcomp.Compiler.pass_step) ->
          (match st.st_ir_before with
          | Some ir ->
            Fmt.pr ";; IR before %s [%d]@.%s" st.st_pass st.st_index ir
          | None -> ());
          match st.st_ir_after with
          | Some ir ->
            Fmt.pr ";; IR after %s [%d] (%d changes)@.%s" st.st_pass
              st.st_index st.st_changes ir
          | None -> ())
        tr.Simcomp.Compiler.pt_steps;
      if emit_ir then
        print_string (Simcomp.Ir.program_to_string tr.Simcomp.Compiler.pt_program)
  end
  else begin
    let cov = Simcomp.Coverage.create () in
    match Simcomp.Compiler.compile ~cov compiler options src with
    | Simcomp.Compiler.Compiled { asm; warnings; spills; _ } ->
      print_string asm;
      Fmt.epr "compiled: %d warnings, %d spills, %d branches covered@."
        warnings spills
        (Simcomp.Coverage.covered cov)
    | Simcomp.Compiler.Compile_error es ->
      List.iter (Fmt.epr "%s@.") es;
      exit 1
    | Simcomp.Compiler.Crashed c ->
      Fmt.epr "internal compiler error: %s@." (Simcomp.Crash.to_string c);
      exit 2
  end

let compile_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let compiler =
    Arg.(
      value & opt compiler_conv Simcomp.Compiler.Gcc
      & info [ "c"; "compiler" ] ~doc:"gcc or clang.")
  in
  let emit_ir = Arg.(value & flag & info [ "emit-ir" ] ~doc:"Print the IR.") in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a C file with the simulated compiler")
    Term.(const compile $ file $ compiler $ options_term $ dump_ir_term $ emit_ir)

(* ------------------------------------------------------------------ *)
(* passes                                                              *)
(* ------------------------------------------------------------------ *)

let passes options =
  let disabled = options.Simcomp.Compiler.disabled_passes in
  let t =
    Report.Table.create ~title:"Registered passes"
      ~header:[ "pass"; "default placement"; "status" ]
  in
  List.iter
    (fun (p : Simcomp.Opt.pass) ->
      Report.Table.add_row t
        [
          p.Simcomp.Opt.pass_name;
          Fmt.str "-O%d" p.Simcomp.Opt.pass_since;
          (if List.mem p.Simcomp.Opt.pass_name disabled then "disabled"
           else "enabled");
        ])
    (Simcomp.Opt.all_passes ());
  Report.Table.print t;
  let pipeline = Simcomp.Compiler.pipeline_of options in
  Fmt.pr "pipeline at -O%d: %s@." options.Simcomp.Compiler.opt_level
    (if pipeline = [] then "(empty)" else String.concat " -> " pipeline)

let passes_cmd =
  Cmd.v
    (Cmd.info "passes"
       ~doc:
         "List the registered optimization passes and the pipeline the \
          given options would run")
    Term.(const passes $ options_term)

(* ------------------------------------------------------------------ *)
(* bisect                                                              *)
(* ------------------------------------------------------------------ *)

let bisect file compiler options =
  let src = read_file file in
  let open Fuzzing.Bisect in
  match run compiler options src with
  | None ->
    Fmt.epr "no finding: compiles cleanly and matches the -O0 behaviour@.";
    exit 1
  | Some v ->
    Fmt.pr "finding:         %s@." (finding_to_string v.v_finding);
    Fmt.pr "pipeline:        %s@." (String.concat " -> " v.v_pipeline);
    (if v.v_attributable then
       Fmt.pr "culprit passes:  %s@." (String.concat ", " v.v_culprits)
     else
       Fmt.pr
         "culprit passes:  (unattributable: the finding survives with every \
          pass disabled)@.");
    Option.iter
      (fun p -> Fmt.pr "first divergent: %s@." p)
      v.v_first_divergent;
    Fmt.pr "recompiles:      %d@." v.v_recompiles

let bisect_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let compiler =
    Arg.(
      value & opt compiler_conv Simcomp.Compiler.Gcc
      & info [ "c"; "compiler" ] ~doc:"gcc or clang.")
  in
  Cmd.v
    (Cmd.info "bisect"
       ~doc:
         "Find the culprit optimization pass behind an ICE or wrong-code \
          finding by re-compiling with passes disabled")
    Term.(const bisect $ file $ compiler $ options_term)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let fuzz compiler iterations seed corpus_kind sample_every schedule pool_max
    faults metrics trace telemetry status log_spec =
  let rng = Cparse.Rng.create seed in
  let seeds = Fuzzing.Seeds.corpus ~n:50 (Cparse.Rng.create seed) in
  let mutators =
    match corpus_kind with
    | "supervised" -> Mutators.Registry.supervised
    | "unsupervised" -> Mutators.Registry.unsupervised
    | "extended" -> Mutators.Registry.extended
    | _ -> Mutators.Registry.core
  in
  let cfg =
    { (Fuzzing.Mucfuzz.default_config ~mutators ()) with
      Fuzzing.Mucfuzz.max_attempts_per_iteration = 16;
      sample_every = max 1 sample_every;
      schedule;
      pool_max =
        (if pool_max > 0 then pool_max
         else (Fuzzing.Mucfuzz.default_config ()).Fuzzing.Mucfuzz.pool_max) }
  in
  let engine = Engine.Ctx.create () in
  let log_spec = parse_log_spec log_spec in
  Option.iter
    (fun (_, level) -> ignore (Engine.Ctx.enable_log ~level engine))
    log_spec;
  if trace then
    Engine.Event.add_sink engine.Engine.Ctx.bus
      (Engine.Event.text_sink ~out:(fun line -> Fmt.epr "%s@." line));
  let tel =
    Option.map (fun dir -> Engine.Telemetry.attach ~dir engine) telemetry
  in
  let st =
    if want_status status then Some (Engine.Status.attach ~label:"uCFuzz" engine)
    else None
  in
  let r =
    Fuzzing.Mucfuzz.run ~cfg ~engine ?faults ~rng ~compiler ~seeds ~iterations
      ~name:"uCFuzz" ()
  in
  Option.iter Engine.Status.finish st;
  Fmt.pr "iterations: %d@." iterations;
  Fmt.pr "mutants: %d (%.1f%% compilable)@." r.Fuzzing.Fuzz_result.total_mutants
    (Fuzzing.Fuzz_result.compilable_ratio r);
  Fmt.pr "coverage: %d branches@."
    (Simcomp.Coverage.covered r.Fuzzing.Fuzz_result.coverage);
  Fmt.pr "unique crashes: %d@." (Fuzzing.Fuzz_result.unique_crashes r);
  Hashtbl.iter
    (fun _ cr ->
      Fmt.pr "  %s@." (Simcomp.Crash.to_string cr.Fuzzing.Fuzz_result.cr_crash))
    r.Fuzzing.Fuzz_result.crashes;
  Option.iter
    (fun t ->
      Engine.Telemetry.finalize ~report:(Fuzzing.Run_report.fuzz ~engine r) t)
    tel;
  Option.iter
    (fun (path, _) ->
      Option.iter
        (fun lg -> Engine.Log.write ~path lg)
        engine.Engine.Ctx.log)
    log_spec;
  if metrics then render_metrics engine

let fuzz_cmd =
  let compiler =
    Arg.(
      value & opt compiler_conv Simcomp.Compiler.Gcc
      & info [ "c"; "compiler" ] ~doc:"gcc or clang.")
  in
  let iterations =
    Arg.(value & opt int 200 & info [ "n"; "iterations" ] ~doc:"Iterations.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.") in
  let corpus =
    Arg.(
      value & opt string "core"
      & info [ "corpus" ]
          ~doc:"Mutator corpus: core, supervised, unsupervised, extended.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Stream engine events to stderr (line-oriented text sink).")
  in
  let sample_every =
    Arg.(
      value & opt int 25
      & info [ "sample-every" ] ~docv:"N"
          ~doc:"Coverage-trend sampling period, iterations per sample.")
  in
  let schedule =
    Arg.(
      value & flag
      & info [ "schedule" ]
          ~doc:
            "AFL-style corpus scheduling: favored entries (smallest per \
             covered edge) are picked 4:1 and the non-favored pool tail is \
             trimmed past $(b,--pool-max).  Changes the RNG stream; off by \
             default to match the paper's Algorithm 1.")
  in
  let pool_max =
    Arg.(
      value & opt int 0
      & info [ "pool-max" ] ~docv:"N"
          ~doc:
            "Pool size the scheduler trims back to (0 = default 4096); \
             only meaningful with $(b,--schedule).")
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Run the uCFuzz coverage-guided fuzzer")
    Term.(
      const fuzz $ compiler $ iterations $ seed $ corpus $ sample_every
      $ schedule $ pool_max $ faults_term $ metrics_flag $ trace
      $ telemetry_flag $ status_flag $ log_flag)

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let generate n seed retry_budget faults metrics telemetry =
  let engine =
    if metrics || telemetry <> None then Some (Engine.Ctx.create ()) else None
  in
  let tel =
    match (engine, telemetry) with
    | Some e, Some dir -> Some (Engine.Telemetry.attach ~dir e)
    | _ -> None
  in
  let cfg =
    let base = Metamut.Pipeline.default_config in
    {
      base with
      Metamut.Pipeline.retry =
        {
          base.Metamut.Pipeline.retry with
          Engine.Retry.max_attempts = max 1 retry_budget;
        };
      faults;
    }
  in
  let runs = Metamut.Pipeline.run_many ~cfg ~seed ?engine ~n () in
  List.iter
    (fun r ->
      let open Metamut.Pipeline in
      match r.r_outcome with
      | Valid m ->
        Fmt.pr "valid      %-36s ($%.2f)@." m.Mutators.Mutator.name
          (dollars_of_tokens (total_cost r).sc_tokens)
      | Invalid_refinement -> Fmt.pr "invalid    %s (refinement)@." r.r_name
      | Invalid_manual why -> Fmt.pr "invalid    %s (%s)@." r.r_name why
      | System_error ->
        Fmt.pr "error      (API, %d attempt%s)@." r.r_attempts
          (if r.r_attempts = 1 then "" else "s"))
    runs;
  let s = Metamut.Pipeline.summarize runs in
  Fmt.pr "valid: %d/%d@." s.Metamut.Pipeline.s_valid n;
  let recovered =
    List.length
      (List.filter
         (fun r ->
           r.Metamut.Pipeline.r_attempts > 1
           && r.Metamut.Pipeline.r_outcome <> Metamut.Pipeline.System_error)
         runs)
  in
  if recovered > 0 then
    Fmt.pr "recovered after retry: %d (%.1f s backoff charged)@." recovered
      (List.fold_left
         (fun acc r ->
           acc +. r.Metamut.Pipeline.r_retry.Metamut.Pipeline.sc_wait_s)
         0. runs);
  Option.iter Engine.Telemetry.finalize tel;
  if metrics then Option.iter render_metrics engine

let generate_cmd =
  let n = Arg.(value & opt int 20 & info [ "n" ] ~doc:"Invocations.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"RNG seed.") in
  let retry_budget =
    Arg.(
      value
      & opt int Engine.Retry.default_policy.Engine.Retry.max_attempts
      & info [ "retry-budget" ] ~docv:"N"
          ~doc:
            "Maximum pipeline attempts per invocation when the simulated \
             API throttles ($(b,1) disables retry, matching the paper's \
             24-errors-in-100 behaviour).")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Run the MetaMut mutator-generation pipeline")
    Term.(
      const generate $ n $ seed $ retry_budget $ faults_term $ metrics_flag
      $ telemetry_flag)

(* ------------------------------------------------------------------ *)
(* campaign                                                            *)
(* ------------------------------------------------------------------ *)

(* The RQ1 stdout table: shared by the Domain-parallel and sharded
   paths, so `campaign` and `campaign --shards K` stay byte-comparable
   on stdout. *)
let print_rq1_table (t : Fuzzing.Campaign.t) =
  let table =
    Report.Table.create ~title:"RQ1 campaign"
      ~header:[ "fuzzer"; "compiler"; "coverage"; "crashes"; "compilable %" ]
  in
  List.iter
    (fun ((f, c), r) ->
      Report.Table.add_row table
        [ Fuzzing.Campaign.fuzzer_name f;
          Simcomp.Bugdb.compiler_to_string c;
          string_of_int (Simcomp.Coverage.covered r.Fuzzing.Fuzz_result.coverage);
          string_of_int (Fuzzing.Fuzz_result.unique_crashes r);
          Fmt.str "%.1f" (Fuzzing.Fuzz_result.compilable_ratio r) ])
    t.Fuzzing.Campaign.results;
  Report.Table.print table

(* --bisect: attribute every unique optimizer-stage crash to its
   culprit pass(es).  Deterministic in the campaign results, so this
   table is byte-identical at any job or shard count. *)
let run_bisect ?engine (t : Fuzzing.Campaign.t) =
  let ats = Fuzzing.Bisect.attribute ?engine t in
  let bt =
    Report.Table.create ~title:"Culprit-pass attribution"
      ~header:[ "compiler"; "bug"; "finding"; "culprits"; "first divergent" ]
  in
  List.iter
    (fun (a : Fuzzing.Bisect.attribution) ->
      let v = a.Fuzzing.Bisect.at_verdict in
      Report.Table.add_row bt
        [
          Simcomp.Bugdb.compiler_to_string a.Fuzzing.Bisect.at_compiler;
          a.Fuzzing.Bisect.at_bug_id;
          Fuzzing.Bisect.finding_to_string v.Fuzzing.Bisect.v_finding;
          (if v.Fuzzing.Bisect.v_attributable then
             String.concat ", " v.Fuzzing.Bisect.v_culprits
           else "(unattributable)");
          Option.value ~default:"-" v.Fuzzing.Bisect.v_first_divergent;
        ])
    ats;
  Report.Table.print bt;
  ats

let campaign iterations jobs sample_every schedule faults checkpoint resume
    bisect metrics telemetry status shards opt_matrix hang_timeout
    lease_deadline alloc_budget serve log_spec =
  (* the per-lease resource governor, only built when a flag departs
     from the defaults so plain sharded runs keep the default limits *)
  let limits =
    let l =
      {
        Engine.Shard.default_limits with
        hang_timeout_s = hang_timeout;
        lease_deadline_s =
          Option.value ~default:infinity
            (Option.map float_of_int lease_deadline);
        alloc_budget_words =
          Option.value ~default:infinity
            (Option.map (fun mw -> float_of_int mw *. 1e6) alloc_budget);
      }
    in
    if l = Engine.Shard.default_limits then None else Some l
  in
  let cfg =
    { Fuzzing.Campaign.default_config with
      iterations;
      (* 0 = auto: ten samples across the run *)
      sample_every =
        (if sample_every > 0 then sample_every else max 1 (iterations / 10));
      jobs =
        (if jobs > 0 then jobs else Fuzzing.Campaign.default_config.jobs);
      schedule }
  in
  let status = want_status status in
  let log_spec = parse_log_spec log_spec in
  let engine =
    if
      metrics || telemetry <> None || status || serve <> None
      || log_spec <> None
    then Some (Engine.Ctx.create ())
    else None
  in
  Option.iter
    (fun (_, level) ->
      Option.iter (fun e -> ignore (Engine.Ctx.enable_log ~level e)) engine)
    log_spec;
  let srv = start_serve engine serve in
  let tel =
    match (engine, telemetry) with
    | Some e, Some dir -> Some (Engine.Telemetry.attach ~dir e)
    | _ -> None
  in
  (* the rendered log groups scopes in canonical unit order, so a
     resumed/faulted run's body matches the clean one *)
  let scope_order =
    List.map Fuzzing.Coordinator.unit_name
      (Fuzzing.Coordinator.units ~opt_levels:opt_matrix ())
  in
  let write_log () =
    match (engine, log_spec) with
    | Some e, Some (path, _) ->
      Option.iter
        (fun lg -> Engine.Log.write ~scope_order ~path lg)
        e.Engine.Ctx.log
    | _ -> ()
  in
  (* driver-scope summary records: only shard-count-invariant counts *)
  let log_driver ~level ~event fields =
    Option.iter
      (fun e -> Engine.Ctx.log_event e ~scope:"" ~level ~event fields)
      engine
  in
  (* live progress: the Status sink narrates events when cells share the
     main context (jobs <= 1); the per-cell completion callback covers
     parallel runs, whose workers emit on private buses.  Both rewrite
     the same stderr line, serialised by a mutex (ticks arrive from
     worker domains). *)
  let st =
    match engine with
    | Some e when status -> Some (Engine.Status.attach ~label:"campaign" e)
    | _ -> None
  in
  let progress =
    if not status then None
    else begin
      let m = Mutex.create () in
      Some
        (fun ~completed ~total name ->
          Mutex.lock m;
          Fmt.epr "\r\027[K[%d/%d] %s done%!" completed total name;
          Mutex.unlock m)
    end
  in
  if shards = 0 && opt_matrix = [] then begin
    (* single-process path: the Domain scheduler over the cell matrix.
       The serve sink folds campaign events off the main bus. *)
    Option.iter Engine.Serve.attach_sink srv;
    let t =
      Fuzzing.Campaign.run ~cfg ?engine ?faults ?checkpoint ~resume ?progress ()
    in
    Option.iter Engine.Status.finish st;
    if status then Fmt.epr "\r\027[K%!";
    (* bookkeeping goes to stderr so stdout stays byte-comparable between
       faulted/resumed runs and clean ones *)
    if t.Fuzzing.Campaign.resumed_cells > 0 then
      Fmt.epr "resumed %d completed cell(s) from checkpoint@."
        t.Fuzzing.Campaign.resumed_cells;
    List.iter
      (fun ((f, c), msg) ->
        let name =
          Fuzzing.Campaign.fuzzer_name f ^ "-"
          ^ Simcomp.Bugdb.compiler_to_string c
        in
        log_driver ~level:Engine.Log.Error ~event:"campaign.cell_failed"
          [ ("cell", name); ("error", msg) ];
        Fmt.epr "FAILED %s: %s@." name msg)
      t.Fuzzing.Campaign.failures;
    print_rq1_table t;
    let attribution =
      if not bisect then None else Some (run_bisect ?engine t)
    in
    Option.iter
      (fun tl ->
        Engine.Telemetry.finalize
          ~report:(Fuzzing.Run_report.campaign ?engine ?attribution t)
          tl)
      tel;
    write_log ();
    serve_shutdown srv;
    if metrics then Option.iter render_metrics engine
  end
  else begin
    (* sharded path: deal cells (x -O levels) to worker subprocesses
       spawned as `metamut worker`, socket end as the child's stdin *)
    let exe = Sys.executable_name in
    (* Spawn workers can't inherit the harness or the governor through
       fork: they rebuild both from the environment *)
    Option.iter Engine.Faults.export_to_env faults;
    Option.iter
      (fun (l : Engine.Shard.limits) ->
        if l.alloc_budget_words < infinity then
          Unix.putenv "METAMUT_SHARD_ALLOC_BUDGET"
            (Fmt.str "%.0f" l.alloc_budget_words))
      limits;
    let backend =
      Engine.Shard.Spawn
        (fun fd ->
          Unix.create_process exe [| exe; "worker" |] fd Unix.stdout
            Unix.stderr)
    in
    let t =
      Fuzzing.Coordinator.run ~cfg ~opt_levels:opt_matrix ?engine ?faults
        ?checkpoint ~resume ~shards:(max 1 shards) ~backend ?limits
        ?status:st ?progress ?serve:srv ?flight_dir:telemetry ()
    in
    Option.iter Engine.Status.finish st;
    if status then Fmt.epr "\r\027[K%!";
    if t.Fuzzing.Coordinator.resumed_units > 0 then
      Fmt.epr "resumed %d completed cell(s) from checkpoint@."
        t.Fuzzing.Coordinator.resumed_units;
    List.iter
      (fun (u, msg) ->
        Fmt.epr "FAILED %s: %s@." (Fuzzing.Coordinator.unit_name u) msg)
      t.Fuzzing.Coordinator.failures;
    List.iter
      (fun (q : Fuzzing.Coordinator.quarantined_unit) ->
        Fmt.epr "QUARANTINED %s after %d attempt(s): %s@."
          (Fuzzing.Coordinator.unit_name q.Fuzzing.Coordinator.qu_unit)
          q.Fuzzing.Coordinator.qu_attempts q.Fuzzing.Coordinator.qu_reason)
      t.Fuzzing.Coordinator.quarantined;
    let s = t.Fuzzing.Coordinator.shard_stats in
    (* driver-scope summary: only shard-count-invariant counts (the
       crash-restart tally is pooled-path-only, so it stays out) *)
    if s.Engine.Shard.st_died > 0 || s.Engine.Shard.st_requeued > 0
       || s.Engine.Shard.st_quarantined > 0
    then
      log_driver ~level:Engine.Log.Warn ~event:"shard.recovery"
        [
          ("died", string_of_int s.Engine.Shard.st_died);
          ("requeued", string_of_int s.Engine.Shard.st_requeued);
          ("quarantined", string_of_int s.Engine.Shard.st_quarantined);
        ];
    if s.Engine.Shard.st_died > 0 || s.Engine.Shard.st_requeued > 0 then
      Fmt.epr "shard recovery: %d worker death(s), %d lease(s) requeued@."
        s.Engine.Shard.st_died s.Engine.Shard.st_requeued;
    if
      s.Engine.Shard.st_oom > 0
      || s.Engine.Shard.st_deadline > 0
      || s.Engine.Shard.st_quarantined > 0
      || s.Engine.Shard.st_crash_restarts > 0
    then
      Fmt.epr
        "shard governor: %d oom kill(s), %d deadline kill(s), %d \
         quarantined, %d coordinator restart(s)@."
        s.Engine.Shard.st_oom s.Engine.Shard.st_deadline
        s.Engine.Shard.st_quarantined s.Engine.Shard.st_crash_restarts;
    if opt_matrix = [] then
      (* same cells, same table: stdout is byte-identical to the
         single-process campaign *)
      print_rq1_table (Fuzzing.Coordinator.to_campaign t)
    else begin
      let table =
        Report.Table.create ~title:"RQ1 campaign (opt matrix)"
          ~header:
            [ "fuzzer"; "compiler"; "-O"; "coverage"; "crashes";
              "compilable %" ]
      in
      List.iter
        (fun ((u : Fuzzing.Coordinator.unit_id), r) ->
          Report.Table.add_row table
            [ Fuzzing.Campaign.fuzzer_name u.Fuzzing.Coordinator.u_fuzzer;
              Simcomp.Bugdb.compiler_to_string u.Fuzzing.Coordinator.u_compiler;
              (match u.Fuzzing.Coordinator.u_opt with
              | Some l -> string_of_int l
              | None -> "2");
              string_of_int
                (Simcomp.Coverage.covered r.Fuzzing.Fuzz_result.coverage);
              string_of_int (Fuzzing.Fuzz_result.unique_crashes r);
              Fmt.str "%.1f" (Fuzzing.Fuzz_result.compilable_ratio r) ])
        t.Fuzzing.Coordinator.results;
      Report.Table.print table
    end;
    (* bisect runs over the default axis only: opt-matrix units would
       collapse onto the same cell and mix levels *)
    let attribution =
      if bisect && opt_matrix = [] then
        Some (run_bisect ?engine (Fuzzing.Coordinator.to_campaign t))
      else begin
        if bisect then
          Fmt.epr "bisect: skipped (not defined over --opt-matrix units)@.";
        None
      end
    in
    Option.iter
      (fun tl ->
        Engine.Telemetry.finalize
          ~report:(Fuzzing.Coordinator.report ?engine ?attribution t)
          tl)
      tel;
    write_log ();
    serve_shutdown srv;
    if metrics then Option.iter render_metrics engine
  end

let campaign_cmd =
  let iterations =
    Arg.(value & opt int 200 & info [ "n"; "iterations" ] ~doc:"Iterations.")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ]
          ~doc:
            "Domain workers over the fuzzer x compiler matrix (0 = \
             recommended domain count).  Results are identical at any job \
             count.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"DIR"
          ~doc:
            "Snapshot each cell's state to $(docv) periodically (atomic \
             write-temp + rename) and save completed cells, so a killed \
             campaign can $(b,--resume).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Restore completed cells and continue interrupted ones from \
             $(b,--checkpoint) $(i,DIR); the reassembled results are \
             identical to an uninterrupted run.")
  in
  let sample_every =
    Arg.(
      value & opt int 0
      & info [ "sample-every" ] ~docv:"N"
          ~doc:
            "Coverage-trend sampling period (0 = auto: ten samples across \
             the run).")
  in
  let bisect =
    Arg.(
      value & flag
      & info [ "bisect" ]
          ~doc:
            "After the run, bisect every unique optimizer-stage crash to \
             its culprit pass(es) and print the attribution table (also \
             lands in the telemetry campaign report).")
  in
  let schedule =
    Arg.(
      value & flag
      & info [ "schedule" ]
          ~doc:
            "Enable AFL-style corpus scheduling in the uCFuzz cells \
             (favored-entry picks + pool trimming).  Deterministic at any \
             job count.")
  in
  let shards =
    Arg.(
      value & opt int 0
      & info [ "shards" ]
          ~doc:
            "Deal campaign cells to $(docv) worker $(i,processes) \
             (spawned $(b,metamut worker), length-prefixed frames over a \
             Unix socketpair).  0 = off (in-process Domain workers); \
             results are byte-identical at any shard count, and a dead \
             or hung worker's lease is requeued."
          ~docv:"K")
  in
  let opt_matrix =
    Arg.(
      value & opt (list int) []
      & info [ "opt-matrix" ] ~docv:"L1,L2,..."
          ~doc:
            "Cross every cell with these $(b,-O) levels (e.g. \
             $(b,--opt-matrix 0,2,3)), so per-level pass pipelines \
             become campaign units of their own.  Implies the sharded \
             coordinator path.")
  in
  let hang_timeout =
    Arg.(
      value
      & opt float Engine.Shard.default_limits.hang_timeout_s
      & info [ "hang-timeout" ] ~docv:"SEC"
          ~doc:
            "Kill a sharded worker silent for $(docv) seconds and requeue \
             its lease (sharded path only).")
  in
  let lease_deadline =
    Arg.(
      value
      & opt (some int) None
      & info [ "lease-deadline" ] ~docv:"SEC"
          ~doc:
            "Per-lease wall-clock budget: a sharded worker holding one \
             lease longer than $(docv) seconds is killed and the lease \
             retried; leases that keep blowing the deadline are \
             quarantined, not fatal (sharded path only).")
  in
  let alloc_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "alloc-budget" ] ~docv:"MWORDS"
          ~doc:
            "Per-lease allocation budget in millions of words: a worker \
             allocating past it OOM-kills itself (exit 137) and the lease \
             is retried, then quarantined (sharded path only).")
  in
  Cmd.v
    (Cmd.info "campaign" ~doc:"Run the six-fuzzer RQ1 comparison")
    Term.(
      const campaign $ iterations $ jobs $ sample_every $ schedule
      $ faults_term
      $ checkpoint $ resume $ bisect $ metrics_flag $ telemetry_flag
      $ status_flag $ shards $ opt_matrix $ hang_timeout $ lease_deadline
      $ alloc_budget $ serve_flag $ log_flag)

(* ------------------------------------------------------------------ *)
(* worker (internal)                                                   *)
(* ------------------------------------------------------------------ *)

let worker_cmd =
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "(internal) Sharded-campaign worker: serve lease frames on stdin \
          until Shutdown.  Spawned by $(b,campaign --shards); not meant \
          for interactive use.")
    Term.(const Fuzzing.Coordinator.worker_main $ const ())

let () =
  Engine.Runtime.tune ();
  let info =
    Cmd.info "metamut" ~version:"1.0.0"
      ~doc:"MetaMut reproduction: LLM-generated mutators for compiler fuzzing"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; mutate_cmd; compile_cmd; passes_cmd; bisect_cmd;
            fuzz_cmd; generate_cmd; campaign_cmd; worker_cmd;
          ]))
