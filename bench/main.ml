(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation, at iteration-budget scale (the substrate is a
   simulator, so the *shape* — who wins, by roughly what factor — is the
   reproduction target; absolute numbers are testbed-specific).

   Output sections:
     Table 1  bugs fixed by the validation-refinement loop (Mu)
     Table 2  generation cost per mutator
     Table 3  request/response time per mutator
     §4.1     corpus statistics (118 = 68 Ms + 50 Mu; category split)
     Figure 7 coverage trends per fuzzer (GCC-sim / Clang-sim)
     Figure 8 Venn summary of unique crashes
     Figure 9 unique-crash discovery over time
     Table 4  unique crashes by compiler component
     Table 5  compilable mutants
     Table 6  bug-hunting overview (macro fuzzer field study)
     Ablations (coverage guidance, havoc rounds, corpus choice)
     Microbenchmarks (Bechamel)

   Scale via METAMUT_BENCH_ITERS (default 400). *)

let iters =
  match Sys.getenv_opt "METAMUT_BENCH_ITERS" with
  | Some s -> (try int_of_string s with _ -> 400)
  | None -> 400

let section name = Fmt.pr "@.---------- %s ----------@." name

(* ------------------------------------------------------------------ *)
(* MetaMut generation experiment: Tables 1-3 and corpus stats           *)
(* ------------------------------------------------------------------ *)

let metamut_runs = lazy (Metamut.Pipeline.run_many ~n:100 ())

let table1 () =
  section "Table 1: bugs fixed by the validation-refinement loop (Mu)";
  let s = Metamut.Pipeline.summarize (Lazy.force metamut_runs) in
  let t =
    Report.Table.create ~title:"Validation goal violations fixed"
      ~header:[ "#"; "violation"; "fixed"; "paper" ]
  in
  let paper = [ 55; 0; 4; 11; 1; 36 ] in
  let names =
    [ "mutator not compile"; "mutator hangs"; "mutator crashes";
      "mutator outputs nothing"; "mutator does not rewrite";
      "creates compile-error mutant" ]
  in
  List.iteri
    (fun i (g, n) ->
      Report.Table.add_row t
        [ string_of_int g; List.nth names i; string_of_int n;
          string_of_int (List.nth paper i) ])
    s.Metamut.Pipeline.s_bugs_fixed_by_goal;
  Report.Table.print t;
  let recovered =
    List.length
      (List.filter
         (fun r ->
           r.Metamut.Pipeline.r_attempts > 1
           && r.Metamut.Pipeline.r_outcome <> Metamut.Pipeline.System_error)
         (Lazy.force metamut_runs))
  in
  Fmt.pr
    "100 invocations: %d system errors after retry, %d recovered by backoff; \
     of the remaining %d, %d valid (paper, no retry: 24 errors, 50/76 = \
     65.8%% valid)@."
    s.s_system_errors recovered (100 - s.s_system_errors) s.s_valid

let cost_stats () =
  let runs =
    List.filter
      (fun r -> r.Metamut.Pipeline.r_outcome <> Metamut.Pipeline.System_error)
      (Lazy.force metamut_runs)
  in
  let of_step f = List.map f runs in
  (runs, of_step)

let table2 () =
  section "Table 2: generation cost of one mutator";
  let _, of_step = cost_stats () in
  let t =
    Report.Table.create ~title:"Tokens / QA rounds / time per step"
      ~header:[ "metric"; "step"; "min"; "max"; "median"; "mean"; "paper mean" ]
  in
  let row metric step values paper_mean =
    let mn, mx, md, mean = Metamut.Pipeline.stats values in
    Report.Table.add_row t
      [ metric; step; Fmt.str "%.0f" mn; Fmt.str "%.0f" mx;
        Fmt.str "%.0f" md; Fmt.str "%.0f" mean; paper_mean ]
  in
  let open Metamut.Pipeline in
  row "Tokens" "Invention"
    (of_step (fun r -> float_of_int r.r_invention.sc_tokens)) "1158";
  row "Tokens" "Implementation"
    (of_step (fun r -> float_of_int r.r_implementation.sc_tokens)) "2501";
  row "Tokens" "Bug-Fixing"
    (of_step (fun r -> float_of_int r.r_bugfix.sc_tokens)) "4935";
  row "Tokens" "Total"
    (of_step (fun r -> float_of_int (total_cost r).sc_tokens)) "8595";
  row "QA" "Bug-Fixing"
    (of_step (fun r -> float_of_int r.r_bugfix.sc_qa_rounds)) "4.0";
  row "QA" "Total"
    (of_step (fun r -> float_of_int (total_cost r).sc_qa_rounds)) "6.0";
  row "Time(s)" "Invention" (of_step (fun r -> r.r_invention.sc_wait_s)) "15";
  row "Time(s)" "Implementation"
    (of_step (fun r ->
         r.r_implementation.sc_wait_s +. r.r_implementation.sc_prepare_s))
    "49";
  row "Time(s)" "Bug-Fixing"
    (of_step (fun r -> r.r_bugfix.sc_wait_s +. r.r_bugfix.sc_prepare_s)) "281";
  row "Time(s)" "Total"
    (of_step (fun r ->
         let c = total_cost r in
         c.sc_wait_s +. c.sc_prepare_s))
    "346";
  Report.Table.print t;
  let _, _, _, mean_tokens =
    Metamut.Pipeline.stats
      (of_step (fun r -> float_of_int (total_cost r).sc_tokens))
  in
  Fmt.pr "mean cost per mutator: $%.2f (paper: ~$0.50)@."
    (Metamut.Pipeline.dollars_of_tokens (int_of_float mean_tokens))

let table3 () =
  section "Table 3: request/response time of a single QA round";
  let runs, _ = cost_stats () in
  let per_round f =
    List.concat_map
      (fun r ->
        let open Metamut.Pipeline in
        let c = total_cost r in
        if c.sc_qa_rounds = 0 then []
        else [ f c /. float_of_int c.sc_qa_rounds ])
      runs
  in
  let t =
    Report.Table.create ~title:"Per-round latency (seconds)"
      ~header:[ "metric"; "min"; "max"; "median"; "mean"; "paper mean" ]
  in
  let row name values paper =
    let mn, mx, md, mean = Metamut.Pipeline.stats values in
    Report.Table.add_row t
      [ name; Fmt.str "%.0f" mn; Fmt.str "%.0f" mx; Fmt.str "%.0f" md;
        Fmt.str "%.0f" mean; paper ]
  in
  row "Wait for response"
    (per_round (fun c -> c.Metamut.Pipeline.sc_wait_s))
    "43";
  row "Prepare request"
    (per_round (fun c -> c.Metamut.Pipeline.sc_prepare_s))
    "17";
  Report.Table.print t

let corpus_stats () =
  section "Corpus statistics (§4.1)";
  let open Mutators in
  Fmt.pr "total valid mutators: %d (paper: 118)@." (List.length Registry.core);
  Fmt.pr "supervised Ms: %d (paper: 68); unsupervised Mu: %d (paper: 50)@."
    (List.length Registry.supervised)
    (List.length Registry.unsupervised);
  Fmt.pr "creative (outside the template): %d (paper: 33)@."
    (List.length Registry.creative);
  let t =
    Report.Table.create ~title:"Mutators by category"
      ~header:[ "category"; "count"; "paper" ]
  in
  let paper = [ 16; 50; 27; 19; 6 ] in
  List.iteri
    (fun i (c, n) ->
      Report.Table.add_row t
        [ Mutator.category_to_string c; string_of_int n;
          string_of_int (List.nth paper i) ])
    (Registry.category_counts ());
  Report.Table.print t

(* ------------------------------------------------------------------ *)
(* RQ1 campaign: Figures 7-9, Tables 4-5                               *)
(* ------------------------------------------------------------------ *)

let campaign =
  lazy
    (let cfg =
       {
         Fuzzing.Campaign.default_config with
         iterations = iters;
         seeds = 60;
         sample_every = max 1 (iters / 20);
         max_attempts = 12;
       }
     in
     Fuzzing.Campaign.run ~cfg ())

let fuzzer_label = Fuzzing.Campaign.fuzzer_name

let figure7 () =
  section "Figure 7: coverage trends (GCC-sim and Clang-sim)";
  List.iter
    (fun compiler ->
      let series =
        List.filter_map
          (fun f ->
            match Fuzzing.Campaign.result (Lazy.force campaign) f compiler with
            | Some r ->
              Some
                (Report.Series.make ~label:(fuzzer_label f)
                   ~points:r.Fuzzing.Fuzz_result.coverage_trend)
            | None -> None)
          Fuzzing.Campaign.all_fuzzers
      in
      let title =
        Fmt.str "Covered branches over time: %s"
          (Simcomp.Bugdb.compiler_to_string compiler)
      in
      print_string (Report.Series.render_plot ~title series);
      print_string (Report.Series.render_data ~title:(title ^ " (data)") series))
    Simcomp.Compiler.[ Gcc; Clang ]

let figure8 () =
  section "Figure 8: Venn summary of unique crashes";
  let sets =
    List.map
      (fun f ->
        (fuzzer_label f, Fuzzing.Campaign.crash_set (Lazy.force campaign) f))
      Fuzzing.Campaign.all_fuzzers
  in
  print_string
    (Report.Series.render_venn
       ~title:"Unique crashes per fuzzer (both compilers)" sets);
  Fmt.pr
    "paper: uCFuzz.s 90, uCFuzz.u 59, AFL++ 19, GrayC 13, YARPGen 2, \
     Csmith 0; union 125; uCFuzz exclusive 72.8%%@."

let figure9 () =
  section "Figure 9: unique crashes over time";
  List.iter
    (fun compiler ->
      let series =
        List.filter_map
          (fun f ->
            match Fuzzing.Campaign.result (Lazy.force campaign) f compiler with
            | Some r ->
              let discoveries =
                Hashtbl.fold
                  (fun _ cr acc ->
                    cr.Fuzzing.Fuzz_result.cr_first_iteration :: acc)
                  r.Fuzzing.Fuzz_result.crashes []
                |> List.sort compare
              in
              let points = List.mapi (fun i it -> (it, i + 1)) discoveries in
              Some
                (Report.Series.make ~label:(fuzzer_label f)
                   ~points:((0, 0) :: points))
            | None -> None)
          Fuzzing.Campaign.all_fuzzers
      in
      let title =
        Fmt.str "Unique crashes over time: %s"
          (Simcomp.Bugdb.compiler_to_string compiler)
      in
      print_string (Report.Series.render_data ~title series))
    Simcomp.Compiler.[ Gcc; Clang ]

let table4 () =
  section "Table 4: unique crashes by compiler component";
  let t =
    Report.Table.create ~title:"Crashes per component (both compilers)"
      ~header:[ "fuzzer"; "Front-End"; "IR"; "Opt"; "Back-End"; "Total" ]
  in
  List.iter
    (fun f ->
      let totals = Hashtbl.create 4 in
      List.iter
        (fun compiler ->
          match Fuzzing.Campaign.result (Lazy.force campaign) f compiler with
          | Some r ->
            List.iter
              (fun (stage, n) ->
                Hashtbl.replace totals stage
                  (n + Option.value ~default:0 (Hashtbl.find_opt totals stage)))
              (Fuzzing.Fuzz_result.crashes_by_stage r)
          | None -> ())
        Simcomp.Compiler.[ Gcc; Clang ];
      let get s = Option.value ~default:0 (Hashtbl.find_opt totals s) in
      let fe = get Simcomp.Crash.Front_end
      and ir = get Simcomp.Crash.Ir_gen
      and opt = get Simcomp.Crash.Optimization
      and be = get Simcomp.Crash.Back_end in
      Report.Table.add_int_row t (fuzzer_label f)
        [ fe; ir; opt; be; fe + ir + opt + be ])
    Fuzzing.Campaign.all_fuzzers;
  Report.Table.print t;
  Fmt.pr
    "paper totals: uCFuzz.s 90 (24/31/24/11), uCFuzz.u 59 (15/26/10/8), \
     AFL++ 19, GrayC 13, Csmith 0, YARPGen 2@."

let table5 () =
  section "Table 5: compilable test programs";
  let t =
    Report.Table.create ~title:"Compilable mutants (both compilers summed)"
      ~header:[ "tool"; "compilable"; "total"; "ratio %"; "paper ratio %" ]
  in
  let paper =
    [ ("uCFuzz.s", "74.46"); ("uCFuzz.u", "72.00"); ("AFL++", "3.53");
      ("GrayC", "98.99"); ("Csmith", "99.86"); ("YARPGen", "99.83") ]
  in
  List.iter
    (fun f ->
      let comp = ref 0 and total = ref 0 in
      List.iter
        (fun compiler ->
          match Fuzzing.Campaign.result (Lazy.force campaign) f compiler with
          | Some r ->
            comp := !comp + r.Fuzzing.Fuzz_result.compilable_mutants;
            total := !total + r.Fuzzing.Fuzz_result.total_mutants
          | None -> ())
        Simcomp.Compiler.[ Gcc; Clang ];
      let ratio =
        if !total = 0 then 0.
        else 100. *. float_of_int !comp /. float_of_int !total
      in
      Report.Table.add_row t
        [ fuzzer_label f; string_of_int !comp; string_of_int !total;
          Fmt.str "%.2f" ratio;
          Option.value ~default:"-" (List.assoc_opt (fuzzer_label f) paper) ])
    Fuzzing.Campaign.all_fuzzers;
  Report.Table.print t

(* ------------------------------------------------------------------ *)
(* RQ2: Table 6 (macro-fuzzer field study)                             *)
(* ------------------------------------------------------------------ *)

let table6 () =
  section "Table 6: bug-hunting with the macro fuzzer";
  let rng = Cparse.Rng.create 909 in
  let seeds = Fuzzing.Seeds.corpus ~n:80 (Cparse.Rng.create 11) in
  let results =
    List.map
      (fun compiler ->
        ( compiler,
          Fuzzing.Macro_fuzzer.run ~rng:(Cparse.Rng.split rng) ~compiler ~seeds
            ~iterations:(2 * iters) () ))
      Simcomp.Compiler.[ Gcc; Clang ]
  in
  let t =
    Report.Table.create ~title:"Reported compiler bugs"
      ~header:[ "metric"; "Clang"; "GCC"; "Total"; "paper total" ]
  in
  let count f =
    List.map
      (fun (_, r) ->
        Hashtbl.fold
          (fun _ cr acc -> if f cr then acc + 1 else acc)
          r.Fuzzing.Fuzz_result.crashes 0)
      results
  in
  let triage (cr : Fuzzing.Fuzz_result.crash_record) =
    Simcomp.Bugdb.triage_of cr.cr_crash.Simcomp.Crash.bug_id
  in
  let add name f paper =
    match count f with
    | [ gcc; clang ] ->
      Report.Table.add_row t
        [ name; string_of_int clang; string_of_int gcc;
          string_of_int (gcc + clang); paper ]
    | _ -> ()
  in
  add "Reported" (fun _ -> true) "131";
  add "Confirmed" (fun cr -> (triage cr).Simcomp.Bugdb.t_confirmed) "129";
  add "Fixed" (fun cr -> (triage cr).Simcomp.Bugdb.t_fixed) "35";
  add "Duplicate" (fun cr -> (triage cr).Simcomp.Bugdb.t_duplicate) "13";
  let stage_is s (cr : Fuzzing.Fuzz_result.crash_record) =
    cr.cr_crash.Simcomp.Crash.stage = s
  in
  add "Front-End" (stage_is Simcomp.Crash.Front_end) "48";
  add "IR Generation" (stage_is Simcomp.Crash.Ir_gen) "45";
  add "Optimization" (stage_is Simcomp.Crash.Optimization) "22";
  add "Back-End" (stage_is Simcomp.Crash.Back_end) "16";
  let kind_is k (cr : Fuzzing.Fuzz_result.crash_record) =
    cr.cr_crash.Simcomp.Crash.kind = k
  in
  add "Segmentation Fault" (kind_is Simcomp.Crash.Segfault) "9";
  add "Assertion Failure" (kind_is Simcomp.Crash.Assertion_failure) "111";
  add "Hang" (kind_is Simcomp.Crash.Hang) "11";
  Report.Table.print t

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablations () =
  section "Ablations";
  let seeds = Fuzzing.Seeds.corpus ~n:40 (Cparse.Rng.create 5) in
  let run ~name ~mutators ~guided ~fragility =
    let cfg =
      {
        (Fuzzing.Mucfuzz.default_config ~mutators ()) with
        Fuzzing.Mucfuzz.coverage_guided = guided;
        fragility;
        max_attempts_per_iteration = 12;
        sample_every = max 1 (iters / 10);
      }
    in
    Fuzzing.Mucfuzz.run ~cfg
      ~rng:(Cparse.Rng.create 33)
      ~compiler:Simcomp.Compiler.Gcc ~seeds ~iterations:(iters / 2) ~name ()
  in
  let t =
    Report.Table.create ~title:"uCFuzz design ablations (GCC-sim)"
      ~header:[ "variant"; "coverage"; "crashes"; "compilable %" ]
  in
  let record name r =
    Report.Table.add_row t
      [ name;
        string_of_int (Simcomp.Coverage.covered r.Fuzzing.Fuzz_result.coverage);
        string_of_int (Fuzzing.Fuzz_result.unique_crashes r);
        Fmt.str "%.1f" (Fuzzing.Fuzz_result.compilable_ratio r) ]
  in
  record "core+guided"
    (run ~name:"core" ~mutators:Mutators.Registry.core ~guided:true
       ~fragility:true);
  record "no-coverage-guidance"
    (run ~name:"unguided" ~mutators:Mutators.Registry.core ~guided:false
       ~fragility:true);
  record "supervised-only"
    (run ~name:"Ms" ~mutators:Mutators.Registry.supervised ~guided:true
       ~fragility:true);
  record "unsupervised-only"
    (run ~name:"Mu" ~mutators:Mutators.Registry.unsupervised ~guided:true
       ~fragility:true);
  record "extended-corpus"
    (run ~name:"ext" ~mutators:Mutators.Registry.extended ~guided:true
       ~fragility:true);
  record "no-fragility"
    (run ~name:"nofrag" ~mutators:Mutators.Registry.core ~guided:true
       ~fragility:false);
  Report.Table.print t;
  let t2 =
    Report.Table.create ~title:"Macro-fuzzer havoc rounds (GCC-sim)"
      ~header:[ "havoc max"; "coverage"; "crashes" ]
  in
  List.iter
    (fun rounds ->
      let cfg =
        { Fuzzing.Macro_fuzzer.default_config with havoc_rounds_max = rounds }
      in
      let r =
        Fuzzing.Macro_fuzzer.run ~cfg
          ~rng:(Cparse.Rng.create 44)
          ~compiler:Simcomp.Compiler.Gcc ~seeds ~iterations:(iters / 2) ()
      in
      Report.Table.add_row t2
        [ string_of_int rounds;
          string_of_int (Simcomp.Coverage.covered r.Fuzzing.Fuzz_result.coverage);
          string_of_int (Fuzzing.Fuzz_result.unique_crashes r) ])
    [ 1; 3; 6 ];
  Report.Table.print t2

(* ------------------------------------------------------------------ *)
(* Extension: EMI-style wrong-code hunt                                *)
(* ------------------------------------------------------------------ *)

let wrongcode () =
  section "Extension: wrong-code (miscompilation) hunt";
  let seeds = Fuzzing.Seeds.corpus ~n:60 (Cparse.Rng.create 21) in
  List.iter
    (fun compiler ->
      let r =
        Fuzzing.Wrongcode.hunt
          ~rng:(Cparse.Rng.create 77)
          ~compiler ~seeds ~iterations:(2 * iters) ()
      in
      Fmt.pr "%s-sim: %d mutants differenced, %d distinct miscompilations@."
        (Simcomp.Bugdb.compiler_to_string compiler)
        r.Fuzzing.Wrongcode.r_checked
        (List.length r.Fuzzing.Wrongcode.r_mismatches);
      List.iter
        (fun mm ->
          Fmt.pr "  %s: -O0 gives (%d,%b), %s gives (%d,%b)@."
            (Simcomp.Compiler.options_to_string mm.Fuzzing.Wrongcode.mm_options)
            (fst mm.Fuzzing.Wrongcode.mm_reference)
            (snd mm.Fuzzing.Wrongcode.mm_reference)
            (Simcomp.Compiler.options_to_string mm.Fuzzing.Wrongcode.mm_options)
            (fst mm.Fuzzing.Wrongcode.mm_observed)
            (snd mm.Fuzzing.Wrongcode.mm_observed))
        r.Fuzzing.Wrongcode.r_mismatches)
    Simcomp.Compiler.[ Gcc; Clang ]

(* ------------------------------------------------------------------ *)
(* Extension: mutation-testing potency (§6)                            *)
(* ------------------------------------------------------------------ *)

let mutation_score () =
  section "Extension: mutation-testing potency of the corpus";
  let rng = Cparse.Rng.create 55 in
  let cfg =
    { Cparse.Ast_gen.default_config with
      allow_pointers = false; allow_strings = false; max_functions = 2;
      max_depth = 2; call_weight = 1 }
  in
  let programs = List.init 12 (fun _ -> Cparse.Ast_gen.gen_tu ~cfg rng) in
  let scores =
    Fuzzing.Mutation_score.score ~tries:2 ~rng
      ~mutators:Mutators.Registry.core ~programs ()
  in
  let agg = Fuzzing.Mutation_score.aggregate scores in
  Fmt.pr
    "corpus-wide: %d mutants — %d killed, %d equivalent, %d invalid, %d      inconclusive (kill rate %.1f%%)@."
    agg.Fuzzing.Mutation_score.s_applied agg.s_killed agg.s_equivalent
    agg.s_invalid agg.s_inconclusive
    (Fuzzing.Mutation_score.kill_rate agg);
  (* the five most and least potent mutators *)
  let decided s =
    s.Fuzzing.Mutation_score.s_killed + s.Fuzzing.Mutation_score.s_equivalent
  in
  let ranked =
    List.filter (fun s -> decided s >= 4) scores
    |> List.sort (fun a b ->
           compare
             (Fuzzing.Mutation_score.kill_rate b)
             (Fuzzing.Mutation_score.kill_rate a))
  in
  let t =
    Report.Table.create ~title:"Most / least potent mutators"
      ~header:[ "mutator"; "kill %"; "applied" ]
  in
  let row s =
    Report.Table.add_row t
      [ s.Fuzzing.Mutation_score.s_mutator;
        Fmt.str "%.0f" (Fuzzing.Mutation_score.kill_rate s);
        string_of_int s.Fuzzing.Mutation_score.s_applied ]
  in
  List.iteri (fun i s -> if i < 5 then row s) ranked;
  Report.Table.add_row t [ "..."; ""; "" ];
  let n = List.length ranked in
  List.iteri (fun i s -> if i >= n - 5 then row s) ranked;
  Report.Table.print t

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let microbenchmarks () =
  section "Microbenchmarks (Bechamel)";
  let open Bechamel in
  let rng = Cparse.Rng.create 17 in
  let src = Cparse.Ast_gen.gen_source rng in
  let tu =
    match Cparse.Parser.parse src with Ok tu -> tu | Error _ -> assert false
  in
  let mut = List.hd Mutators.Registry.core in
  let tests =
    [
      Test.make ~name:"parse" (Staged.stage (fun () -> Cparse.Parser.parse src));
      Test.make ~name:"typecheck"
        (Staged.stage (fun () -> Cparse.Typecheck.check tu));
      Test.make ~name:"pretty-print"
        (Staged.stage (fun () -> Cparse.Pretty.tu_to_string tu));
      Test.make ~name:"mutate"
        (Staged.stage (fun () -> Mutators.Mutator.apply mut ~rng tu));
      Test.make ~name:"compile-O2"
        (Staged.stage (fun () ->
             Simcomp.Compiler.compile Simcomp.Compiler.Gcc
               Simcomp.Compiler.default_options src));
      Test.make ~name:"interpret"
        (Staged.stage (fun () -> Simcomp.Interp.run ~fuel:50_000 tu));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"metamut" tests) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Fmt.pr "%-22s %12.0f ns/run@." name est
      | _ -> Fmt.pr "%-22s (no estimate)@." name)
    results

(* ------------------------------------------------------------------ *)

let () =
  Fmt.pr "MetaMut reproduction benchmark harness (iterations=%d)@." iters;
  table1 ();
  table2 ();
  table3 ();
  corpus_stats ();
  figure7 ();
  figure8 ();
  figure9 ();
  table4 ();
  table5 ();
  table6 ();
  ablations ();
  wrongcode ();
  mutation_score ();
  microbenchmarks ();
  Fmt.pr "@.done.@."
