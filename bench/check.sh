#!/bin/sh
# Tier-1 verification: full build + test suite, as required by ROADMAP.md.
# Usage: bench/check.sh  (from the repository root)
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== smoke: campaign determinism across job counts =="
CLI=_build/default/bin/metamut_cli.exe
if [ -x "$CLI" ]; then
  "$CLI" campaign --iterations 10 --jobs 1 > /tmp/campaign_j1.txt
  "$CLI" campaign --iterations 10 --jobs 4 > /tmp/campaign_j4.txt
  if cmp -s /tmp/campaign_j1.txt /tmp/campaign_j4.txt; then
    echo "campaign output identical for --jobs 1 and --jobs 4"
  else
    echo "FAIL: campaign output differs between --jobs 1 and --jobs 4" >&2
    diff /tmp/campaign_j1.txt /tmp/campaign_j4.txt >&2 || true
    exit 1
  fi
fi

echo "== smoke: faulted campaign determinism across job counts =="
if [ -x "$CLI" ]; then
  FAULTS="hang=0.05,crash=0.2"
  "$CLI" campaign --iterations 10 --jobs 1 --faults "$FAULTS" --fault-seed 3 \
    > /tmp/campaign_f1.txt
  "$CLI" campaign --iterations 10 --jobs 4 --faults "$FAULTS" --fault-seed 3 \
    > /tmp/campaign_f4.txt
  if cmp -s /tmp/campaign_f1.txt /tmp/campaign_f4.txt; then
    echo "faulted campaign output identical for --jobs 1 and --jobs 4"
  else
    echo "FAIL: faulted campaign output differs between job counts" >&2
    diff /tmp/campaign_f1.txt /tmp/campaign_f4.txt >&2 || true
    exit 1
  fi
fi

echo "== smoke: campaign checkpoint/resume round-trip =="
if [ -x "$CLI" ]; then
  CKPT=$(mktemp -d)
  "$CLI" campaign --iterations 10 --jobs 2 --checkpoint "$CKPT" \
    > /tmp/campaign_ckpt.txt 2> /dev/null
  # lose one completed cell, as a mid-run kill would
  rm "$CKPT/done-uCFuzz.s-GCC.ckpt"
  "$CLI" campaign --iterations 10 --jobs 2 --checkpoint "$CKPT" --resume \
    > /tmp/campaign_resume.txt 2> /dev/null
  if cmp -s /tmp/campaign_ckpt.txt /tmp/campaign_resume.txt; then
    echo "resumed campaign output identical to the uninterrupted run"
  else
    echo "FAIL: resumed campaign output differs from the original" >&2
    diff /tmp/campaign_ckpt.txt /tmp/campaign_resume.txt >&2 || true
    exit 1
  fi
  rm -rf "$CKPT"
fi

echo "== smoke: telemetry artifacts =="
if [ -x "$CLI" ]; then
  TEL=$(mktemp -d)
  # Telemetry must be a pure observer: the fuzz result printed on
  # stdout has to be byte-identical with and without --telemetry.
  "$CLI" fuzz -n 40 --seed 7 > /tmp/fuzz_plain.txt 2> /dev/null
  "$CLI" fuzz -n 40 --seed 7 --telemetry "$TEL" \
    > /tmp/fuzz_tel.txt 2> /dev/null
  if ! cmp -s /tmp/fuzz_plain.txt /tmp/fuzz_tel.txt; then
    echo "FAIL: --telemetry changed the fuzz output" >&2
    diff /tmp/fuzz_plain.txt /tmp/fuzz_tel.txt >&2 || true
    exit 1
  fi
  for f in trace.jsonl metrics.prom metrics.json campaign-report.md; do
    if [ ! -s "$TEL/$f" ]; then
      echo "FAIL: telemetry artifact $f missing or empty" >&2
      exit 1
    fi
  done
  # Chrome trace and JSON snapshot must each be one valid JSON document.
  if command -v jq > /dev/null 2>&1; then
    jq -e . "$TEL/trace.jsonl" > /dev/null || {
      echo "FAIL: trace.jsonl is not valid JSON" >&2
      exit 1
    }
    jq -e '.counters and .gauges and .histograms' "$TEL/metrics.json" \
      > /dev/null || {
      echo "FAIL: metrics.json missing counters/gauges/histograms" >&2
      exit 1
    }
  else
    echo "jq not found; skipping JSON validation"
  fi
  # Prometheus text exposition: TYPE comments and sane sample lines.
  grep -q '^# TYPE metamut_compile_total counter' "$TEL/metrics.prom" || {
    echo "FAIL: metrics.prom missing compile counter TYPE line" >&2
    exit 1
  }
  grep -q '^metamut_.*_bucket{le="+Inf"} ' "$TEL/metrics.prom" || {
    echo "FAIL: metrics.prom missing histogram +Inf bucket" >&2
    exit 1
  }
  grep -q '"name":"compile.' "$TEL/trace.jsonl" || {
    echo "FAIL: trace.jsonl has no compile spans" >&2
    exit 1
  }
  grep -q '^## ' "$TEL/campaign-report.md" || {
    echo "FAIL: campaign-report.md has no sections" >&2
    exit 1
  }
  rm -rf "$TEL"
  echo "telemetry artifacts well-formed; fuzz output unchanged"
fi

echo "== smoke: campaign determinism with telemetry enabled =="
if [ -x "$CLI" ]; then
  TEL1=$(mktemp -d)
  TEL4=$(mktemp -d)
  "$CLI" campaign --iterations 10 --jobs 1 --telemetry "$TEL1" \
    > /tmp/campaign_t1.txt 2> /dev/null
  "$CLI" campaign --iterations 10 --jobs 4 --telemetry "$TEL4" \
    > /tmp/campaign_t4.txt 2> /dev/null
  if cmp -s /tmp/campaign_t1.txt /tmp/campaign_t4.txt \
      && cmp -s /tmp/campaign_j1.txt /tmp/campaign_t1.txt; then
    echo "campaign output identical with telemetry at --jobs 1 and 4"
  else
    echo "FAIL: telemetry perturbed campaign output across job counts" >&2
    diff /tmp/campaign_t1.txt /tmp/campaign_t4.txt >&2 || true
    exit 1
  fi
  rm -rf "$TEL1" "$TEL4"
fi

echo "== smoke: faulted resume with telemetry stays byte-identical =="
if [ -x "$CLI" ]; then
  CKPT=$(mktemp -d)
  TELA=$(mktemp -d)
  TELB=$(mktemp -d)
  FAULTS="hang=0.05,crash=0.2"
  "$CLI" campaign --iterations 10 --jobs 2 --faults "$FAULTS" \
    --fault-seed 3 --checkpoint "$CKPT" --telemetry "$TELA" \
    > /tmp/campaign_ftel.txt 2> /dev/null
  rm "$CKPT/done-uCFuzz.s-GCC.ckpt"
  "$CLI" campaign --iterations 10 --jobs 2 --faults "$FAULTS" \
    --fault-seed 3 --checkpoint "$CKPT" --resume --telemetry "$TELB" \
    > /tmp/campaign_ftel_resume.txt 2> /dev/null
  if cmp -s /tmp/campaign_ftel.txt /tmp/campaign_ftel_resume.txt; then
    echo "faulted resumed campaign with telemetry identical to uninterrupted"
  else
    echo "FAIL: telemetry+faults+resume changed the campaign output" >&2
    diff /tmp/campaign_ftel.txt /tmp/campaign_ftel_resume.txt >&2 || true
    exit 1
  fi
  rm -rf "$CKPT" "$TELA" "$TELB"
fi

echo "== smoke: culprit-pass bisection =="
if [ -x "$CLI" ]; then
  # A canned wrong-code finding (the seeded reassociation miscompile):
  # bisection must name constfold, deterministically.
  WC=$(mktemp /tmp/wrongcode_XXXXXX.c)
  cat > "$WC" <<'EOF'
int r[6];
int total;
int main(void) {
  int a = (int)(char)100;
  for (int i = 0; i < 3; i++) total += i;
  for (int j = 0; j < 3; j++) total += j;
  r[1] += r[0];
  r[2] += r[1];
  r[3] += r[2];
  total = a - 7;
  return total & 255;
}
EOF
  "$CLI" bisect "$WC" -c gcc -O 2 > /tmp/bisect_1.txt
  grep -q '^culprit passes:  constfold$' /tmp/bisect_1.txt || {
    echo "FAIL: bisect did not name constfold as the culprit" >&2
    cat /tmp/bisect_1.txt >&2
    exit 1
  }
  grep -q '^first divergent: constfold$' /tmp/bisect_1.txt || {
    echo "FAIL: per-pass differential did not flag constfold" >&2
    cat /tmp/bisect_1.txt >&2
    exit 1
  }
  "$CLI" bisect "$WC" -c gcc -O 2 > /tmp/bisect_2.txt
  if cmp -s /tmp/bisect_1.txt /tmp/bisect_2.txt; then
    echo "bisect verdict deterministic: constfold"
  else
    echo "FAIL: bisect verdict not deterministic" >&2
    exit 1
  fi
  rm -f "$WC"
fi

echo "== smoke: campaign --bisect determinism across job counts =="
if [ -x "$CLI" ]; then
  "$CLI" campaign --iterations 10 --jobs 1 --bisect > /tmp/campaign_b1.txt
  "$CLI" campaign --iterations 10 --jobs 4 --bisect > /tmp/campaign_b4.txt
  if cmp -s /tmp/campaign_b1.txt /tmp/campaign_b4.txt; then
    echo "campaign --bisect output identical for --jobs 1 and --jobs 4"
  else
    echo "FAIL: campaign --bisect output differs between job counts" >&2
    diff /tmp/campaign_b1.txt /tmp/campaign_b4.txt >&2 || true
    exit 1
  fi
fi

echo "== smoke: fuzz-throughput bench =="
# Smoke mode keeps CI fast; this gate only checks the bench runs and
# emits well-formed JSON — perf numbers are informational, not gating.
# Written under _build/ so a local run never tramples the committed
# full-mode BENCH_fuzz_throughput.json at the repository root.
BENCH=_build/default/bench/throughput.exe
if [ -x "$BENCH" ]; then
  "$BENCH" --smoke --out _build/BENCH_fuzz_throughput.json
  grep -q '"bench": "fuzz_throughput"' _build/BENCH_fuzz_throughput.json || {
    echo "FAIL: _build/BENCH_fuzz_throughput.json malformed" >&2
    exit 1
  }
  # Allocation-regression gate: the smoke run's minor-words/compile is
  # deterministic for a given build, so compare it against the recorded
  # baseline with 15% headroom.  Improvements should lower the baseline
  # (bench/BASELINE_smoke_minor_words) in the same PR.
  BASELINE=$(cat bench/BASELINE_smoke_minor_words)
  SMOKE_WORDS=$(sed -n 's/.*"minor_words_per_compile": \([0-9.]*\).*/\1/p' \
    _build/BENCH_fuzz_throughput.json | head -n 1)
  if [ -z "$SMOKE_WORDS" ]; then
    echo "FAIL: minor_words_per_compile missing from bench JSON" >&2
    exit 1
  fi
  if awk -v w="$SMOKE_WORDS" -v b="$BASELINE" 'BEGIN { exit !(w > b * 1.15) }'
  then
    echo "FAIL: smoke minor-words/compile $SMOKE_WORDS exceeds baseline $BASELINE x 1.15" >&2
    exit 1
  fi
  echo "smoke minor-words/compile $SMOKE_WORDS within baseline $BASELINE x 1.15"
fi

echo "== smoke: scheduled fuzzing determinism across job counts =="
# The corpus scheduler (favored-entry picks + pool trimming) must be
# deterministic at any job count, like the default path.
if [ -x "$CLI" ]; then
  "$CLI" campaign --iterations 10 --jobs 1 --schedule > /tmp/campaign_s1.txt
  "$CLI" campaign --iterations 10 --jobs 4 --schedule > /tmp/campaign_s4.txt
  if cmp -s /tmp/campaign_s1.txt /tmp/campaign_s4.txt; then
    echo "scheduled campaign output identical for --jobs 1 and --jobs 4"
  else
    echo "FAIL: scheduled campaign output differs between job counts" >&2
    diff /tmp/campaign_s1.txt /tmp/campaign_s4.txt >&2 || true
    exit 1
  fi
fi

echo "== smoke: sharded campaign determinism across shard counts =="
# The fork/socket coordinator must reproduce the sequential campaign
# byte-for-byte: shards:1 (inline) and shards:2 (two forked workers)
# both have to match the plain --jobs 1 run captured above.
if [ -x "$CLI" ]; then
  "$CLI" campaign --iterations 10 --shards 1 > /tmp/campaign_sh1.txt 2> /dev/null
  "$CLI" campaign --iterations 10 --shards 2 > /tmp/campaign_sh2.txt 2> /dev/null
  if cmp -s /tmp/campaign_sh1.txt /tmp/campaign_sh2.txt \
      && cmp -s /tmp/campaign_j1.txt /tmp/campaign_sh1.txt; then
    echo "sharded campaign output identical for --shards 1, --shards 2, and plain"
  else
    echo "FAIL: sharded campaign output differs across shard counts" >&2
    diff /tmp/campaign_sh1.txt /tmp/campaign_sh2.txt >&2 || true
    diff /tmp/campaign_j1.txt /tmp/campaign_sh1.txt >&2 || true
    exit 1
  fi
fi

echo "== smoke: sharded worker-kill recovery =="
# Kill the worker holding one lease mid-campaign (test hook fires on the
# first attempt only): the coordinator must requeue the lease, respawn,
# and still produce byte-identical stdout; the intervention is reported
# on stderr only.
if [ -x "$CLI" ]; then
  METAMUT_SHARD_KILL="uCFuzz.s-GCC" \
    "$CLI" campaign --iterations 10 --shards 2 \
    > /tmp/campaign_kill.txt 2> /tmp/campaign_kill.err
  if cmp -s /tmp/campaign_sh2.txt /tmp/campaign_kill.txt; then
    echo "campaign output identical after a mid-lease worker kill"
  else
    echo "FAIL: worker-kill recovery changed the campaign output" >&2
    diff /tmp/campaign_sh2.txt /tmp/campaign_kill.txt >&2 || true
    exit 1
  fi
  grep -q 'shard recovery: 1 worker death' /tmp/campaign_kill.err || {
    echo "FAIL: worker kill was not reported on stderr" >&2
    cat /tmp/campaign_kill.err >&2
    exit 1
  }
fi

echo "== smoke: opt-matrix determinism across shard counts =="
# The -O axis multiplies the unit list; the shards:1 = shards:K
# byte-identity contract must hold there too.
if [ -x "$CLI" ]; then
  "$CLI" campaign --iterations 10 --shards 1 --opt-matrix 0,2 \
    > /tmp/campaign_om1.txt 2> /dev/null
  "$CLI" campaign --iterations 10 --shards 2 --opt-matrix 0,2 \
    > /tmp/campaign_om2.txt 2> /dev/null
  if cmp -s /tmp/campaign_om1.txt /tmp/campaign_om2.txt; then
    echo "opt-matrix campaign output identical for --shards 1 and --shards 2"
  else
    echo "FAIL: opt-matrix campaign output differs between shard counts" >&2
    diff /tmp/campaign_om1.txt /tmp/campaign_om2.txt >&2 || true
    exit 1
  fi
fi

echo "== smoke: chaos-armed sharded campaign =="
# Every shard-layer fault site armed at once: injected frame garbles,
# mid-frame stalls, worker OOM kills and coordinator crash-restarts must
# all be recovered (or quarantined) without touching stdout, which stays
# byte-identical to the clean sharded run at every shard count.
if [ -x "$CLI" ]; then
  CHAOS="frame=0.2,stall=0.1,oom=0.2,coord=0.3"
  "$CLI" campaign --iterations 10 --shards 1 --faults "$CHAOS" \
    --fault-seed 17 --hang-timeout 2 \
    > /tmp/campaign_ch1.txt 2> /dev/null
  "$CLI" campaign --iterations 10 --shards 2 --faults "$CHAOS" \
    --fault-seed 17 --hang-timeout 2 \
    > /tmp/campaign_ch2.txt 2> /tmp/campaign_ch2.err
  if cmp -s /tmp/campaign_ch1.txt /tmp/campaign_ch2.txt \
      && cmp -s /tmp/campaign_sh2.txt /tmp/campaign_ch2.txt; then
    echo "chaos-armed campaign output identical across shard counts and to clean"
  else
    echo "FAIL: shard-layer chaos changed the campaign output" >&2
    diff /tmp/campaign_ch1.txt /tmp/campaign_ch2.txt >&2 || true
    diff /tmp/campaign_sh2.txt /tmp/campaign_ch2.txt >&2 || true
    exit 1
  fi
  grep -q 'shard recovery:' /tmp/campaign_ch2.err || {
    echo "FAIL: armed chaos never fired (no recovery line on stderr)" >&2
    cat /tmp/campaign_ch2.err >&2
    exit 1
  }
fi

echo "== smoke: coordinator SIGKILL + --resume byte-identity =="
# Kill the coordinator process mid-campaign; per-lease result journaling
# must let --resume reproduce the uninterrupted run's stdout exactly.
if [ -x "$CLI" ]; then
  CKPT=$(mktemp -d)
  "$CLI" campaign --iterations 10 --shards 2 --opt-matrix 0,2 \
    --checkpoint "$CKPT" > /tmp/campaign_crash.txt 2> /dev/null &
  COORD_PID=$!
  sleep 1
  kill -9 "$COORD_PID" 2> /dev/null || true
  wait "$COORD_PID" 2> /dev/null || true
  "$CLI" campaign --iterations 10 --shards 2 --opt-matrix 0,2 \
    --checkpoint "$CKPT" --resume \
    > /tmp/campaign_crash_resume.txt 2> /dev/null
  if cmp -s /tmp/campaign_om2.txt /tmp/campaign_crash_resume.txt; then
    echo "resumed campaign after coordinator SIGKILL identical to uninterrupted"
  else
    echo "FAIL: coordinator SIGKILL + resume changed the campaign output" >&2
    diff /tmp/campaign_om2.txt /tmp/campaign_crash_resume.txt >&2 || true
    exit 1
  fi
  rm -rf "$CKPT"
fi

echo "== smoke: structured log determinism =="
# The --log body carries no wall clock and renders grouped by scope, so
# it must be byte-identical across job counts, across shard counts, and
# under worker-process chaos (in-worker and shard-level fault records are
# pure functions of the per-lease fault stream).  Never compare a
# jobs-path log against a shards-path log: the supervision records
# legitimately differ.
if [ -x "$CLI" ]; then
  # in-process faults + checkpointing at :debug so the jobs-path log has
  # real records (fault.injected, retry.backoff, checkpoint.saved) to
  # compare, not two empty files
  CKL1=$(mktemp -d)
  CKL4=$(mktemp -d)
  "$CLI" campaign --iterations 10 --jobs 1 --faults "hang=0.05,crash=0.2" \
    --fault-seed 3 --checkpoint "$CKL1" \
    --log /tmp/campaign_lg_j1.jsonl:debug > /dev/null 2> /dev/null
  "$CLI" campaign --iterations 10 --jobs 4 --faults "hang=0.05,crash=0.2" \
    --fault-seed 3 --checkpoint "$CKL4" \
    --log /tmp/campaign_lg_j4.jsonl:debug > /dev/null 2> /dev/null
  rm -rf "$CKL1" "$CKL4"
  if cmp -s /tmp/campaign_lg_j1.jsonl /tmp/campaign_lg_j4.jsonl; then
    echo "log body identical for --jobs 1 and --jobs 4"
  else
    echo "FAIL: --log body differs between job counts" >&2
    diff /tmp/campaign_lg_j1.jsonl /tmp/campaign_lg_j4.jsonl >&2 || true
    exit 1
  fi
  grep -q '"event":"fault.injected"' /tmp/campaign_lg_j1.jsonl || {
    echo "FAIL: faulted jobs-path log has no fault.injected records" >&2
    exit 1
  }
  "$CLI" campaign --iterations 10 --shards 1 --log /tmp/campaign_lg_sh1.jsonl \
    > /dev/null 2> /dev/null
  "$CLI" campaign --iterations 10 --shards 2 --log /tmp/campaign_lg_sh2.jsonl \
    > /dev/null 2> /dev/null
  if cmp -s /tmp/campaign_lg_sh1.jsonl /tmp/campaign_lg_sh2.jsonl; then
    echo "log body identical for --shards 1 and --shards 2"
  else
    echo "FAIL: --log body differs between shard counts" >&2
    diff /tmp/campaign_lg_sh1.jsonl /tmp/campaign_lg_sh2.jsonl >&2 || true
    exit 1
  fi
  # chaos: worker-OOM kills produce lease.infra / lease.retry /
  # lease.verdict records keyed to the (lease, attempt) fault stream
  "$CLI" campaign --iterations 10 --shards 1 --faults oom=0.5 --fault-seed 5 \
    --log /tmp/campaign_lg_ch1.jsonl > /dev/null 2> /dev/null
  "$CLI" campaign --iterations 10 --shards 2 --faults oom=0.5 --fault-seed 5 \
    --log /tmp/campaign_lg_ch2.jsonl > /dev/null 2> /dev/null
  if cmp -s /tmp/campaign_lg_ch1.jsonl /tmp/campaign_lg_ch2.jsonl; then
    echo "chaos log body identical for --shards 1 and --shards 2"
  else
    echo "FAIL: chaos --log body differs between shard counts" >&2
    diff /tmp/campaign_lg_ch1.jsonl /tmp/campaign_lg_ch2.jsonl >&2 || true
    exit 1
  fi
  grep -q '"event":"lease.verdict"' /tmp/campaign_lg_ch2.jsonl || {
    echo "FAIL: chaos log has no lease.verdict records" >&2
    exit 1
  }
fi

echo "== smoke: profiling export (profile.folded, mutator yield) =="
if [ -x "$CLI" ]; then
  TEL=$(mktemp -d)
  "$CLI" fuzz -n 40 --seed 7 --telemetry "$TEL" > /dev/null 2> /dev/null
  for f in profile.folded mutator-yield.json; do
    if [ ! -s "$TEL/$f" ]; then
      echo "FAIL: telemetry artifact $f missing or empty" >&2
      exit 1
    fi
  done
  # every folded line is "stack;frames NNN" — the exact grammar
  # flamegraph.pl and speedscope consume
  if grep -qvE '^[^ ]+ [0-9]+$' "$TEL/profile.folded"; then
    echo "FAIL: profile.folded has malformed folded-stack lines" >&2
    head "$TEL/profile.folded" >&2
    exit 1
  fi
  grep -q 'compile' "$TEL/profile.folded" || {
    echo "FAIL: profile.folded has no compile stacks" >&2
    exit 1
  }
  if command -v flamegraph.pl > /dev/null 2>&1; then
    flamegraph.pl "$TEL/profile.folded" > /tmp/flame.svg || {
      echo "FAIL: flamegraph.pl rejected profile.folded" >&2
      exit 1
    }
  fi
  if command -v jq > /dev/null 2>&1; then
    jq -e '.[0].mutator and (.[0].fresh_edges >= 0)' "$TEL/mutator-yield.json" \
      > /dev/null || {
      echo "FAIL: mutator-yield.json malformed" >&2
      exit 1
    }
  fi
  grep -q '## Where the time goes' "$TEL/campaign-report.md" || {
    echo "FAIL: report is missing the self-time table" >&2
    exit 1
  }
  rm -rf "$TEL"
  echo "profile.folded and mutator-yield.json well-formed"
fi

echo "== smoke: live observability endpoints (--serve) =="
# Scrape the campaign during its post-run linger window: /status.json
# must report done, /healthz must be 200, and /metrics must match the
# final metrics.prom modulo the wall-clock families (span./gc./
# telemetry.).  Serving must not perturb stdout.
if [ -x "$CLI" ] && command -v curl > /dev/null 2>&1; then
  TEL=$(mktemp -d)
  : > /tmp/campaign_serve.err
  METAMUT_SERVE_LINGER=10 "$CLI" campaign --iterations 10 --jobs 1 \
    --serve 127.0.0.1:0 --telemetry "$TEL" \
    > /tmp/campaign_serve.txt 2> /tmp/campaign_serve.err &
  SRV_PID=$!
  ADDR=""
  i=0
  while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's/^serving on //p' /tmp/campaign_serve.err | head -n 1)
    [ -n "$ADDR" ] && break
    sleep 0.1
    i=$((i + 1))
  done
  if [ -z "$ADDR" ]; then
    echo "FAIL: --serve never reported its bound address" >&2
    exit 1
  fi
  DONE=""
  i=0
  while [ $i -lt 150 ]; do
    if curl -fsS "http://$ADDR/status.json" 2> /dev/null \
        | grep -q '"done": true'; then
      DONE=yes
      break
    fi
    sleep 0.1
    i=$((i + 1))
  done
  if [ -z "$DONE" ]; then
    echo "FAIL: /status.json never reported done" >&2
    kill "$SRV_PID" 2> /dev/null || true
    exit 1
  fi
  HB=$(curl -fsS "http://$ADDR/healthz")
  [ "$HB" = "ok" ] || {
    echo "FAIL: /healthz was not ok on a clean run" >&2
    exit 1
  }
  curl -fsS "http://$ADDR/metrics" > /tmp/serve_metrics.prom || {
    echo "FAIL: /metrics scrape failed" >&2
    exit 1
  }
  grep -q '^# TYPE metamut_compile_total counter' /tmp/serve_metrics.prom || {
    echo "FAIL: live /metrics is not Prometheus text exposition" >&2
    exit 1
  }
  wait "$SRV_PID"
  grep -Ev 'metamut_(span|gc|telemetry)_' /tmp/serve_metrics.prom \
    > /tmp/serve_metrics_f.prom
  grep -Ev 'metamut_(span|gc|telemetry)_' "$TEL/metrics.prom" \
    > /tmp/final_metrics_f.prom
  if cmp -s /tmp/serve_metrics_f.prom /tmp/final_metrics_f.prom; then
    echo "live /metrics matches metrics.prom modulo wall-clock families"
  else
    echo "FAIL: live /metrics diverged from the final metrics.prom" >&2
    diff /tmp/serve_metrics_f.prom /tmp/final_metrics_f.prom >&2 || true
    exit 1
  fi
  if cmp -s /tmp/campaign_j1.txt /tmp/campaign_serve.txt; then
    echo "serving did not perturb campaign stdout"
  else
    echo "FAIL: --serve changed the campaign output" >&2
    diff /tmp/campaign_j1.txt /tmp/campaign_serve.txt >&2 || true
    exit 1
  fi
  rm -rf "$TEL"
else
  echo "curl not found; skipping serve smoke"
fi

echo "== smoke: quarantine flight recorder + degraded /healthz =="
# Guaranteed-lethal faults: every lease OOMs until its breaker trips,
# so every unit must leave a flight-<unit>.json in the telemetry dir,
# and a live /healthz must serve 503 once the first breaker trips.
if [ -x "$CLI" ]; then
  TELF=$(mktemp -d)
  : > /tmp/campaign_flight.err
  if command -v curl > /dev/null 2>&1; then
    METAMUT_SERVE_LINGER=10 "$CLI" campaign --iterations 10 --shards 2 \
      --faults oom=1.0 --fault-seed 9 --telemetry "$TELF" \
      --serve 127.0.0.1:0 \
      > /tmp/campaign_flight.txt 2> /tmp/campaign_flight.err &
    FL_PID=$!
    ADDR=""
    i=0
    while [ $i -lt 100 ]; do
      ADDR=$(sed -n 's/^serving on //p' /tmp/campaign_flight.err | head -n 1)
      [ -n "$ADDR" ] && break
      sleep 0.1
      i=$((i + 1))
    done
    DONE=""
    i=0
    while [ $i -lt 300 ]; do
      if curl -fsS "http://$ADDR/status.json" 2> /dev/null \
          | grep -q '"done": true'; then
        DONE=yes
        break
      fi
      sleep 0.1
      i=$((i + 1))
    done
    if [ -z "$DONE" ]; then
      echo "FAIL: flight-smoke /status.json never reported done" >&2
      kill "$FL_PID" 2> /dev/null || true
      exit 1
    fi
    CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/healthz")
    [ "$CODE" = "503" ] || {
      echo "FAIL: /healthz served $CODE after breaker trips (want 503)" >&2
      exit 1
    }
    echo "/healthz degraded to 503 after breaker trips"
    wait "$FL_PID"
  else
    "$CLI" campaign --iterations 10 --shards 2 --faults oom=1.0 \
      --fault-seed 9 --telemetry "$TELF" \
      > /tmp/campaign_flight.txt 2> /tmp/campaign_flight.err
  fi
  if ! ls "$TELF"/flight-*.json > /dev/null 2>&1; then
    echo "FAIL: quarantined leases left no flight-<unit>.json" >&2
    ls "$TELF" >&2 || true
    exit 1
  fi
  FLIGHT=$(ls "$TELF"/flight-*.json | head -n 1)
  grep -q '"reason"' "$FLIGHT" && grep -q '"events"' "$FLIGHT" || {
    echo "FAIL: flight record missing reason/events" >&2
    cat "$FLIGHT" >&2
    exit 1
  }
  if command -v jq > /dev/null 2>&1; then
    jq -e '.unit and .reason and (.events | type == "array")' "$FLIGHT" \
      > /dev/null || {
      echo "FAIL: flight record is not valid JSON" >&2
      exit 1
    }
  fi
  grep -q 'QUARANTINED' /tmp/campaign_flight.err || {
    echo "FAIL: quarantine was not reported on stderr" >&2
    exit 1
  }
  rm -rf "$TELF"
  echo "flight recorder dumped for quarantined leases"
fi

echo "OK"
