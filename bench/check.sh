#!/bin/sh
# Tier-1 verification: full build + test suite, as required by ROADMAP.md.
# Usage: bench/check.sh  (from the repository root)
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== smoke: campaign determinism across job counts =="
CLI=_build/default/bin/metamut_cli.exe
if [ -x "$CLI" ]; then
  "$CLI" campaign --iterations 10 --jobs 1 > /tmp/campaign_j1.txt
  "$CLI" campaign --iterations 10 --jobs 4 > /tmp/campaign_j4.txt
  if cmp -s /tmp/campaign_j1.txt /tmp/campaign_j4.txt; then
    echo "campaign output identical for --jobs 1 and --jobs 4"
  else
    echo "FAIL: campaign output differs between --jobs 1 and --jobs 4" >&2
    diff /tmp/campaign_j1.txt /tmp/campaign_j4.txt >&2 || true
    exit 1
  fi
fi

echo "== smoke: faulted campaign determinism across job counts =="
if [ -x "$CLI" ]; then
  FAULTS="hang=0.05,crash=0.2"
  "$CLI" campaign --iterations 10 --jobs 1 --faults "$FAULTS" --fault-seed 3 \
    > /tmp/campaign_f1.txt
  "$CLI" campaign --iterations 10 --jobs 4 --faults "$FAULTS" --fault-seed 3 \
    > /tmp/campaign_f4.txt
  if cmp -s /tmp/campaign_f1.txt /tmp/campaign_f4.txt; then
    echo "faulted campaign output identical for --jobs 1 and --jobs 4"
  else
    echo "FAIL: faulted campaign output differs between job counts" >&2
    diff /tmp/campaign_f1.txt /tmp/campaign_f4.txt >&2 || true
    exit 1
  fi
fi

echo "== smoke: campaign checkpoint/resume round-trip =="
if [ -x "$CLI" ]; then
  CKPT=$(mktemp -d)
  "$CLI" campaign --iterations 10 --jobs 2 --checkpoint "$CKPT" \
    > /tmp/campaign_ckpt.txt 2> /dev/null
  # lose one completed cell, as a mid-run kill would
  rm "$CKPT/done-uCFuzz.s-GCC.ckpt"
  "$CLI" campaign --iterations 10 --jobs 2 --checkpoint "$CKPT" --resume \
    > /tmp/campaign_resume.txt 2> /dev/null
  if cmp -s /tmp/campaign_ckpt.txt /tmp/campaign_resume.txt; then
    echo "resumed campaign output identical to the uninterrupted run"
  else
    echo "FAIL: resumed campaign output differs from the original" >&2
    diff /tmp/campaign_ckpt.txt /tmp/campaign_resume.txt >&2 || true
    exit 1
  fi
  rm -rf "$CKPT"
fi

echo "== smoke: telemetry artifacts =="
if [ -x "$CLI" ]; then
  TEL=$(mktemp -d)
  # Telemetry must be a pure observer: the fuzz result printed on
  # stdout has to be byte-identical with and without --telemetry.
  "$CLI" fuzz -n 40 --seed 7 > /tmp/fuzz_plain.txt 2> /dev/null
  "$CLI" fuzz -n 40 --seed 7 --telemetry "$TEL" \
    > /tmp/fuzz_tel.txt 2> /dev/null
  if ! cmp -s /tmp/fuzz_plain.txt /tmp/fuzz_tel.txt; then
    echo "FAIL: --telemetry changed the fuzz output" >&2
    diff /tmp/fuzz_plain.txt /tmp/fuzz_tel.txt >&2 || true
    exit 1
  fi
  for f in trace.jsonl metrics.prom metrics.json campaign-report.md; do
    if [ ! -s "$TEL/$f" ]; then
      echo "FAIL: telemetry artifact $f missing or empty" >&2
      exit 1
    fi
  done
  # Chrome trace and JSON snapshot must each be one valid JSON document.
  if command -v jq > /dev/null 2>&1; then
    jq -e . "$TEL/trace.jsonl" > /dev/null || {
      echo "FAIL: trace.jsonl is not valid JSON" >&2
      exit 1
    }
    jq -e '.counters and .gauges and .histograms' "$TEL/metrics.json" \
      > /dev/null || {
      echo "FAIL: metrics.json missing counters/gauges/histograms" >&2
      exit 1
    }
  else
    echo "jq not found; skipping JSON validation"
  fi
  # Prometheus text exposition: TYPE comments and sane sample lines.
  grep -q '^# TYPE metamut_compile_total counter' "$TEL/metrics.prom" || {
    echo "FAIL: metrics.prom missing compile counter TYPE line" >&2
    exit 1
  }
  grep -q '^metamut_.*_bucket{le="+Inf"} ' "$TEL/metrics.prom" || {
    echo "FAIL: metrics.prom missing histogram +Inf bucket" >&2
    exit 1
  }
  grep -q '"name":"compile.' "$TEL/trace.jsonl" || {
    echo "FAIL: trace.jsonl has no compile spans" >&2
    exit 1
  }
  grep -q '^## ' "$TEL/campaign-report.md" || {
    echo "FAIL: campaign-report.md has no sections" >&2
    exit 1
  }
  rm -rf "$TEL"
  echo "telemetry artifacts well-formed; fuzz output unchanged"
fi

echo "== smoke: campaign determinism with telemetry enabled =="
if [ -x "$CLI" ]; then
  TEL1=$(mktemp -d)
  TEL4=$(mktemp -d)
  "$CLI" campaign --iterations 10 --jobs 1 --telemetry "$TEL1" \
    > /tmp/campaign_t1.txt 2> /dev/null
  "$CLI" campaign --iterations 10 --jobs 4 --telemetry "$TEL4" \
    > /tmp/campaign_t4.txt 2> /dev/null
  if cmp -s /tmp/campaign_t1.txt /tmp/campaign_t4.txt \
      && cmp -s /tmp/campaign_j1.txt /tmp/campaign_t1.txt; then
    echo "campaign output identical with telemetry at --jobs 1 and 4"
  else
    echo "FAIL: telemetry perturbed campaign output across job counts" >&2
    diff /tmp/campaign_t1.txt /tmp/campaign_t4.txt >&2 || true
    exit 1
  fi
  rm -rf "$TEL1" "$TEL4"
fi

echo "== smoke: faulted resume with telemetry stays byte-identical =="
if [ -x "$CLI" ]; then
  CKPT=$(mktemp -d)
  TELA=$(mktemp -d)
  TELB=$(mktemp -d)
  FAULTS="hang=0.05,crash=0.2"
  "$CLI" campaign --iterations 10 --jobs 2 --faults "$FAULTS" \
    --fault-seed 3 --checkpoint "$CKPT" --telemetry "$TELA" \
    > /tmp/campaign_ftel.txt 2> /dev/null
  rm "$CKPT/done-uCFuzz.s-GCC.ckpt"
  "$CLI" campaign --iterations 10 --jobs 2 --faults "$FAULTS" \
    --fault-seed 3 --checkpoint "$CKPT" --resume --telemetry "$TELB" \
    > /tmp/campaign_ftel_resume.txt 2> /dev/null
  if cmp -s /tmp/campaign_ftel.txt /tmp/campaign_ftel_resume.txt; then
    echo "faulted resumed campaign with telemetry identical to uninterrupted"
  else
    echo "FAIL: telemetry+faults+resume changed the campaign output" >&2
    diff /tmp/campaign_ftel.txt /tmp/campaign_ftel_resume.txt >&2 || true
    exit 1
  fi
  rm -rf "$CKPT" "$TELA" "$TELB"
fi

echo "== smoke: culprit-pass bisection =="
if [ -x "$CLI" ]; then
  # A canned wrong-code finding (the seeded reassociation miscompile):
  # bisection must name constfold, deterministically.
  WC=$(mktemp /tmp/wrongcode_XXXXXX.c)
  cat > "$WC" <<'EOF'
int r[6];
int total;
int main(void) {
  int a = (int)(char)100;
  for (int i = 0; i < 3; i++) total += i;
  for (int j = 0; j < 3; j++) total += j;
  r[1] += r[0];
  r[2] += r[1];
  r[3] += r[2];
  total = a - 7;
  return total & 255;
}
EOF
  "$CLI" bisect "$WC" -c gcc -O 2 > /tmp/bisect_1.txt
  grep -q '^culprit passes:  constfold$' /tmp/bisect_1.txt || {
    echo "FAIL: bisect did not name constfold as the culprit" >&2
    cat /tmp/bisect_1.txt >&2
    exit 1
  }
  grep -q '^first divergent: constfold$' /tmp/bisect_1.txt || {
    echo "FAIL: per-pass differential did not flag constfold" >&2
    cat /tmp/bisect_1.txt >&2
    exit 1
  }
  "$CLI" bisect "$WC" -c gcc -O 2 > /tmp/bisect_2.txt
  if cmp -s /tmp/bisect_1.txt /tmp/bisect_2.txt; then
    echo "bisect verdict deterministic: constfold"
  else
    echo "FAIL: bisect verdict not deterministic" >&2
    exit 1
  fi
  rm -f "$WC"
fi

echo "== smoke: campaign --bisect determinism across job counts =="
if [ -x "$CLI" ]; then
  "$CLI" campaign --iterations 10 --jobs 1 --bisect > /tmp/campaign_b1.txt
  "$CLI" campaign --iterations 10 --jobs 4 --bisect > /tmp/campaign_b4.txt
  if cmp -s /tmp/campaign_b1.txt /tmp/campaign_b4.txt; then
    echo "campaign --bisect output identical for --jobs 1 and --jobs 4"
  else
    echo "FAIL: campaign --bisect output differs between job counts" >&2
    diff /tmp/campaign_b1.txt /tmp/campaign_b4.txt >&2 || true
    exit 1
  fi
fi

echo "== smoke: fuzz-throughput bench =="
# Smoke mode keeps CI fast; this gate only checks the bench runs and
# emits well-formed JSON — perf numbers are informational, not gating.
# Written under _build/ so a local run never tramples the committed
# full-mode BENCH_fuzz_throughput.json at the repository root.
BENCH=_build/default/bench/throughput.exe
if [ -x "$BENCH" ]; then
  "$BENCH" --smoke --out _build/BENCH_fuzz_throughput.json
  grep -q '"bench": "fuzz_throughput"' _build/BENCH_fuzz_throughput.json || {
    echo "FAIL: _build/BENCH_fuzz_throughput.json malformed" >&2
    exit 1
  }
  # Allocation-regression gate: the smoke run's minor-words/compile is
  # deterministic for a given build, so compare it against the recorded
  # baseline with 15% headroom.  Improvements should lower the baseline
  # (bench/BASELINE_smoke_minor_words) in the same PR.
  BASELINE=$(cat bench/BASELINE_smoke_minor_words)
  SMOKE_WORDS=$(sed -n 's/.*"minor_words_per_compile": \([0-9.]*\).*/\1/p' \
    _build/BENCH_fuzz_throughput.json | head -n 1)
  if [ -z "$SMOKE_WORDS" ]; then
    echo "FAIL: minor_words_per_compile missing from bench JSON" >&2
    exit 1
  fi
  if awk -v w="$SMOKE_WORDS" -v b="$BASELINE" 'BEGIN { exit !(w > b * 1.15) }'
  then
    echo "FAIL: smoke minor-words/compile $SMOKE_WORDS exceeds baseline $BASELINE x 1.15" >&2
    exit 1
  fi
  echo "smoke minor-words/compile $SMOKE_WORDS within baseline $BASELINE x 1.15"
fi

echo "== smoke: scheduled fuzzing determinism across job counts =="
# The corpus scheduler (favored-entry picks + pool trimming) must be
# deterministic at any job count, like the default path.
if [ -x "$CLI" ]; then
  "$CLI" campaign --iterations 10 --jobs 1 --schedule > /tmp/campaign_s1.txt
  "$CLI" campaign --iterations 10 --jobs 4 --schedule > /tmp/campaign_s4.txt
  if cmp -s /tmp/campaign_s1.txt /tmp/campaign_s4.txt; then
    echo "scheduled campaign output identical for --jobs 1 and --jobs 4"
  else
    echo "FAIL: scheduled campaign output differs between job counts" >&2
    diff /tmp/campaign_s1.txt /tmp/campaign_s4.txt >&2 || true
    exit 1
  fi
fi

echo "== smoke: sharded campaign determinism across shard counts =="
# The fork/socket coordinator must reproduce the sequential campaign
# byte-for-byte: shards:1 (inline) and shards:2 (two forked workers)
# both have to match the plain --jobs 1 run captured above.
if [ -x "$CLI" ]; then
  "$CLI" campaign --iterations 10 --shards 1 > /tmp/campaign_sh1.txt 2> /dev/null
  "$CLI" campaign --iterations 10 --shards 2 > /tmp/campaign_sh2.txt 2> /dev/null
  if cmp -s /tmp/campaign_sh1.txt /tmp/campaign_sh2.txt \
      && cmp -s /tmp/campaign_j1.txt /tmp/campaign_sh1.txt; then
    echo "sharded campaign output identical for --shards 1, --shards 2, and plain"
  else
    echo "FAIL: sharded campaign output differs across shard counts" >&2
    diff /tmp/campaign_sh1.txt /tmp/campaign_sh2.txt >&2 || true
    diff /tmp/campaign_j1.txt /tmp/campaign_sh1.txt >&2 || true
    exit 1
  fi
fi

echo "== smoke: sharded worker-kill recovery =="
# Kill the worker holding one lease mid-campaign (test hook fires on the
# first attempt only): the coordinator must requeue the lease, respawn,
# and still produce byte-identical stdout; the intervention is reported
# on stderr only.
if [ -x "$CLI" ]; then
  METAMUT_SHARD_KILL="uCFuzz.s-GCC" \
    "$CLI" campaign --iterations 10 --shards 2 \
    > /tmp/campaign_kill.txt 2> /tmp/campaign_kill.err
  if cmp -s /tmp/campaign_sh2.txt /tmp/campaign_kill.txt; then
    echo "campaign output identical after a mid-lease worker kill"
  else
    echo "FAIL: worker-kill recovery changed the campaign output" >&2
    diff /tmp/campaign_sh2.txt /tmp/campaign_kill.txt >&2 || true
    exit 1
  fi
  grep -q 'shard recovery: 1 worker death' /tmp/campaign_kill.err || {
    echo "FAIL: worker kill was not reported on stderr" >&2
    cat /tmp/campaign_kill.err >&2
    exit 1
  }
fi

echo "== smoke: opt-matrix determinism across shard counts =="
# The -O axis multiplies the unit list; the shards:1 = shards:K
# byte-identity contract must hold there too.
if [ -x "$CLI" ]; then
  "$CLI" campaign --iterations 10 --shards 1 --opt-matrix 0,2 \
    > /tmp/campaign_om1.txt 2> /dev/null
  "$CLI" campaign --iterations 10 --shards 2 --opt-matrix 0,2 \
    > /tmp/campaign_om2.txt 2> /dev/null
  if cmp -s /tmp/campaign_om1.txt /tmp/campaign_om2.txt; then
    echo "opt-matrix campaign output identical for --shards 1 and --shards 2"
  else
    echo "FAIL: opt-matrix campaign output differs between shard counts" >&2
    diff /tmp/campaign_om1.txt /tmp/campaign_om2.txt >&2 || true
    exit 1
  fi
fi

echo "== smoke: chaos-armed sharded campaign =="
# Every shard-layer fault site armed at once: injected frame garbles,
# mid-frame stalls, worker OOM kills and coordinator crash-restarts must
# all be recovered (or quarantined) without touching stdout, which stays
# byte-identical to the clean sharded run at every shard count.
if [ -x "$CLI" ]; then
  CHAOS="frame=0.2,stall=0.1,oom=0.2,coord=0.3"
  "$CLI" campaign --iterations 10 --shards 1 --faults "$CHAOS" \
    --fault-seed 17 --hang-timeout 2 \
    > /tmp/campaign_ch1.txt 2> /dev/null
  "$CLI" campaign --iterations 10 --shards 2 --faults "$CHAOS" \
    --fault-seed 17 --hang-timeout 2 \
    > /tmp/campaign_ch2.txt 2> /tmp/campaign_ch2.err
  if cmp -s /tmp/campaign_ch1.txt /tmp/campaign_ch2.txt \
      && cmp -s /tmp/campaign_sh2.txt /tmp/campaign_ch2.txt; then
    echo "chaos-armed campaign output identical across shard counts and to clean"
  else
    echo "FAIL: shard-layer chaos changed the campaign output" >&2
    diff /tmp/campaign_ch1.txt /tmp/campaign_ch2.txt >&2 || true
    diff /tmp/campaign_sh2.txt /tmp/campaign_ch2.txt >&2 || true
    exit 1
  fi
  grep -q 'shard recovery:' /tmp/campaign_ch2.err || {
    echo "FAIL: armed chaos never fired (no recovery line on stderr)" >&2
    cat /tmp/campaign_ch2.err >&2
    exit 1
  }
fi

echo "== smoke: coordinator SIGKILL + --resume byte-identity =="
# Kill the coordinator process mid-campaign; per-lease result journaling
# must let --resume reproduce the uninterrupted run's stdout exactly.
if [ -x "$CLI" ]; then
  CKPT=$(mktemp -d)
  "$CLI" campaign --iterations 10 --shards 2 --opt-matrix 0,2 \
    --checkpoint "$CKPT" > /tmp/campaign_crash.txt 2> /dev/null &
  COORD_PID=$!
  sleep 1
  kill -9 "$COORD_PID" 2> /dev/null || true
  wait "$COORD_PID" 2> /dev/null || true
  "$CLI" campaign --iterations 10 --shards 2 --opt-matrix 0,2 \
    --checkpoint "$CKPT" --resume \
    > /tmp/campaign_crash_resume.txt 2> /dev/null
  if cmp -s /tmp/campaign_om2.txt /tmp/campaign_crash_resume.txt; then
    echo "resumed campaign after coordinator SIGKILL identical to uninterrupted"
  else
    echo "FAIL: coordinator SIGKILL + resume changed the campaign output" >&2
    diff /tmp/campaign_om2.txt /tmp/campaign_crash_resume.txt >&2 || true
    exit 1
  fi
  rm -rf "$CKPT"
fi

echo "OK"
