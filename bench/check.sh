#!/bin/sh
# Tier-1 verification: full build + test suite, as required by ROADMAP.md.
# Usage: bench/check.sh  (from the repository root)
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== smoke: campaign determinism across job counts =="
CLI=_build/default/bin/metamut_cli.exe
if [ -x "$CLI" ]; then
  "$CLI" campaign --iterations 10 --jobs 1 > /tmp/campaign_j1.txt
  "$CLI" campaign --iterations 10 --jobs 4 > /tmp/campaign_j4.txt
  if cmp -s /tmp/campaign_j1.txt /tmp/campaign_j4.txt; then
    echo "campaign output identical for --jobs 1 and --jobs 4"
  else
    echo "FAIL: campaign output differs between --jobs 1 and --jobs 4" >&2
    diff /tmp/campaign_j1.txt /tmp/campaign_j4.txt >&2 || true
    exit 1
  fi
fi

echo "== smoke: fuzz-throughput bench =="
# Smoke mode keeps CI fast; this gate only checks the bench runs and
# emits well-formed JSON — perf numbers are informational, not gating.
# Written under _build/ so a local run never tramples the committed
# full-mode BENCH_fuzz_throughput.json at the repository root.
BENCH=_build/default/bench/throughput.exe
if [ -x "$BENCH" ]; then
  "$BENCH" --smoke --out _build/BENCH_fuzz_throughput.json
  grep -q '"bench": "fuzz_throughput"' _build/BENCH_fuzz_throughput.json || {
    echo "FAIL: _build/BENCH_fuzz_throughput.json malformed" >&2
    exit 1
  }
fi

echo "OK"
