#!/bin/sh
# Tier-1 verification: full build + test suite, as required by ROADMAP.md.
# Usage: bench/check.sh  (from the repository root)
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== smoke: campaign determinism across job counts =="
CLI=_build/default/bin/metamut_cli.exe
if [ -x "$CLI" ]; then
  "$CLI" campaign --iterations 10 --jobs 1 > /tmp/campaign_j1.txt
  "$CLI" campaign --iterations 10 --jobs 4 > /tmp/campaign_j4.txt
  if cmp -s /tmp/campaign_j1.txt /tmp/campaign_j4.txt; then
    echo "campaign output identical for --jobs 1 and --jobs 4"
  else
    echo "FAIL: campaign output differs between --jobs 1 and --jobs 4" >&2
    diff /tmp/campaign_j1.txt /tmp/campaign_j4.txt >&2 || true
    exit 1
  fi
fi

echo "== smoke: faulted campaign determinism across job counts =="
if [ -x "$CLI" ]; then
  FAULTS="hang=0.05,crash=0.2"
  "$CLI" campaign --iterations 10 --jobs 1 --faults "$FAULTS" --fault-seed 3 \
    > /tmp/campaign_f1.txt
  "$CLI" campaign --iterations 10 --jobs 4 --faults "$FAULTS" --fault-seed 3 \
    > /tmp/campaign_f4.txt
  if cmp -s /tmp/campaign_f1.txt /tmp/campaign_f4.txt; then
    echo "faulted campaign output identical for --jobs 1 and --jobs 4"
  else
    echo "FAIL: faulted campaign output differs between job counts" >&2
    diff /tmp/campaign_f1.txt /tmp/campaign_f4.txt >&2 || true
    exit 1
  fi
fi

echo "== smoke: campaign checkpoint/resume round-trip =="
if [ -x "$CLI" ]; then
  CKPT=$(mktemp -d)
  "$CLI" campaign --iterations 10 --jobs 2 --checkpoint "$CKPT" \
    > /tmp/campaign_ckpt.txt 2> /dev/null
  # lose one completed cell, as a mid-run kill would
  rm "$CKPT/done-uCFuzz.s-GCC.ckpt"
  "$CLI" campaign --iterations 10 --jobs 2 --checkpoint "$CKPT" --resume \
    > /tmp/campaign_resume.txt 2> /dev/null
  if cmp -s /tmp/campaign_ckpt.txt /tmp/campaign_resume.txt; then
    echo "resumed campaign output identical to the uninterrupted run"
  else
    echo "FAIL: resumed campaign output differs from the original" >&2
    diff /tmp/campaign_ckpt.txt /tmp/campaign_resume.txt >&2 || true
    exit 1
  fi
  rm -rf "$CKPT"
fi

echo "== smoke: fuzz-throughput bench =="
# Smoke mode keeps CI fast; this gate only checks the bench runs and
# emits well-formed JSON — perf numbers are informational, not gating.
# Written under _build/ so a local run never tramples the committed
# full-mode BENCH_fuzz_throughput.json at the repository root.
BENCH=_build/default/bench/throughput.exe
if [ -x "$BENCH" ]; then
  "$BENCH" --smoke --out _build/BENCH_fuzz_throughput.json
  grep -q '"bench": "fuzz_throughput"' _build/BENCH_fuzz_throughput.json || {
    echo "FAIL: _build/BENCH_fuzz_throughput.json malformed" >&2
    exit 1
  }
fi

echo "OK"
