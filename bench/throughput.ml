(* Fuzzing-throughput benchmark: the perf trajectory for the hot path.

   Unlike bench/main.ml (which regenerates the paper's tables), this
   harness measures what the ROADMAP's "as fast as the hardware allows"
   goal needs tracked across PRs:

     - mutants/sec and compiles/sec over a μCFuzz microbench,
     - minor-words allocated per compile (GC pressure of the pipeline),
     - minor-words allocated per Coverage.hit (must be 0: the coverage
       hot path is allocation-free),
     - covered branches and unique crashes, as a sanity anchor that the
       speedup did not change fuzzing behaviour.

   Results are written as JSON to BENCH_fuzz_throughput.json in the
   current directory (bench/check.sh runs from the repository root).

   The file keeps a history: each run appends (or, for a re-run under
   the same label, replaces) one entry in the "history" array, and the
   latest entry's fields are mirrored at the top level so dashboards
   and bench/check.sh keep reading the flat keys.  A pre-history flat
   file is migrated into the first entry.

   Flags / environment:
     --smoke                     tiny budget for CI (also: METAMUT_BENCH_SMOKE=1)
     --out FILE                  output path (default BENCH_fuzz_throughput.json)
     --label NAME                history key (default: the mode, smoke/full)
     METAMUT_THROUGHPUT_ITERS=N  override the iteration budget *)

let () = Engine.Runtime.tune ()

let smoke =
  Array.exists (( = ) "--smoke") Sys.argv
  || Sys.getenv_opt "METAMUT_BENCH_SMOKE" = Some "1"

let iterations =
  match Sys.getenv_opt "METAMUT_THROUGHPUT_ITERS" with
  | Some s -> (try int_of_string s with _ -> 10_000)
  | None -> if smoke then 200 else 10_000

let flag_value name ~default =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then default
    else if Sys.argv.(i) = name then Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let shards = int_of_string (flag_value "--shards" ~default:"0")
let out_path = flag_value "--out" ~default:"BENCH_fuzz_throughput.json"

let label =
  flag_value "--label"
    ~default:
      (if shards > 0 then Fmt.str "shards-%d" shards
       else if smoke then "smoke"
       else "full")

(* ------------------------------------------------------------------ *)
(* Measurements                                                        *)
(* ------------------------------------------------------------------ *)

(* Minor words allocated per Coverage.hit.  The acceptance bar is 0:
   the AFL-style byte map bumps a cell without touching the heap. *)
let coverage_hit_minor_words () =
  let cov = Simcomp.Coverage.create () in
  let n = 1_000_000 in
  (* warm up so any one-time allocation is outside the window *)
  for i = 0 to 999 do
    Simcomp.Coverage.hit cov i
  done;
  let before = (Gc.quick_stat ()).Gc.minor_words in
  for i = 0 to n - 1 do
    Simcomp.Coverage.hit cov (i * 7919)
  done;
  let after = (Gc.quick_stat ()).Gc.minor_words in
  (after -. before) /. float_of_int n

type run_stats = {
  rs_elapsed_s : float;
  rs_mutants : int;
  rs_compiles : int;
  rs_cached : int;
  rs_minor_words : float;
  rs_covered : int;
  rs_crashes : int;
  rs_probe_minor_mean : float;
  rs_probe_minor_p50 : float;
  rs_probe_minor_p95 : float;
  rs_promoted_words : float;
  rs_major_collections : float;
}

(* The 10k-iteration μCFuzz microbench: one coverage-guided campaign on
   GCC-sim with the core corpus, the configuration the paper's RQ1 runs
   at (bounded attempt budget, fragility on).  With [faults], the same
   campaign runs with the harness armed — pass a zero-rate harness to
   measure the pure consultation overhead of the chaos layer. *)
let mucfuzz_throughput ?faults () =
  let seeds = Fuzzing.Seeds.corpus ~n:30 (Cparse.Rng.create 11) in
  let cfg =
    {
      (Fuzzing.Mucfuzz.default_config ()) with
      Fuzzing.Mucfuzz.max_attempts_per_iteration = 8;
      sample_every = max 1 (iterations / 20);
    }
  in
  let engine = Engine.Ctx.create () in
  (* The probe piggybacks on the compile hook, so the same run also
     yields the batch-sampled GC profile telemetry would report. *)
  let probe = Engine.Ctx.enable_probe engine in
  let counter name =
    Engine.Metrics.counter_value
      (Engine.Metrics.counter engine.Engine.Ctx.metrics name)
  in
  let compiles () = counter "compile.total" in
  let c0 = compiles () in
  let w0 = (Gc.quick_stat ()).Gc.minor_words in
  let t0 = Unix.gettimeofday () in
  let r =
    Fuzzing.Mucfuzz.run ~cfg ~engine ?faults
      ~rng:(Cparse.Rng.create 42)
      ~compiler:Simcomp.Compiler.Gcc ~seeds ~iterations ~name:"bench" ()
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let minor = (Gc.quick_stat ()).Gc.minor_words -. w0 in
  Engine.Probe.sample probe;
  {
    rs_elapsed_s = elapsed;
    rs_mutants = r.Fuzzing.Fuzz_result.total_mutants;
    rs_compiles = compiles () - c0;
    rs_cached = counter "compile.cached";
    rs_minor_words = minor;
    rs_covered = Simcomp.Coverage.covered r.Fuzzing.Fuzz_result.coverage;
    rs_crashes = Fuzzing.Fuzz_result.unique_crashes r;
    rs_probe_minor_mean = Engine.Probe.minor_words_mean probe;
    rs_probe_minor_p50 = Engine.Probe.minor_words_p50 probe;
    rs_probe_minor_p95 = Engine.Probe.minor_words_p95 probe;
    rs_promoted_words = Engine.Probe.promoted_words probe;
    rs_major_collections = Engine.Probe.major_collections probe;
  }

(* ------------------------------------------------------------------ *)
(* Sharded mode: the scaling curve                                     *)
(* ------------------------------------------------------------------ *)

(* One shard's share of a sharded run: everything the breakdown needs,
   Marshal-shipped back over the Result frame. *)
type shard_stats = {
  ss_shard : int;
  ss_elapsed_s : float;
  ss_mutants : int;
  ss_compiles : int;
  ss_covered : int;
  ss_crashes : int;
}

(* N forked workers, each running the same μCFuzz microbench with its
   own RNG stream (seed 42+shard) and its own iteration budget — the
   aggregate mutants/s over the wall-clock of the whole pool is the
   number the ROADMAP's scaling curve tracks.  The per-shard rate sanity
   anchor: sum(per-shard mutants) / wall == aggregate. *)
let sharded_throughput n =
  let f ~heartbeat ~seq:_ ~attempt:_ (body : string) =
    let shard =
      match Engine.Shard.decode body with
      | Ok (i : int) -> i
      | Error msg -> failwith msg
    in
    let seeds = Fuzzing.Seeds.corpus ~n:30 (Cparse.Rng.create 11) in
    let cfg =
      {
        (Fuzzing.Mucfuzz.default_config ()) with
        Fuzzing.Mucfuzz.max_attempts_per_iteration = 8;
        sample_every = max 1 (iterations / 20);
      }
    in
    let engine = Engine.Ctx.create () in
    (* A full-mode lease is minutes of silent work — without heartbeats
       the pool's hang detector would kill a perfectly healthy worker.
       Same throttle as the campaign coordinator: one beat per ~200
       compiles. *)
    let execs = ref 0 in
    Engine.Event.add_sink engine.Engine.Ctx.bus
      {
        Engine.Event.sink_name = "bench-heartbeat";
        emit =
          (fun e ->
            match e with
            | Engine.Event.Compile_finished _ ->
              incr execs;
              if !execs mod 200 = 0 then
                heartbeat ~execs:!execs ~covered:0 ~crashes:0
            | _ -> ());
      };
    let compiles () =
      Engine.Metrics.counter_value
        (Engine.Metrics.counter engine.Engine.Ctx.metrics "compile.total")
    in
    let t0 = Unix.gettimeofday () in
    let r =
      Fuzzing.Mucfuzz.run ~cfg ~engine
        ~rng:(Cparse.Rng.create (42 + shard))
        ~compiler:Simcomp.Compiler.Gcc ~seeds ~iterations
        ~name:(Fmt.str "bench-s%d" shard)
        ()
    in
    Engine.Shard.encode
      {
        ss_shard = shard;
        ss_elapsed_s = Unix.gettimeofday () -. t0;
        ss_mutants = r.Fuzzing.Fuzz_result.total_mutants;
        ss_compiles = compiles ();
        ss_covered = Simcomp.Coverage.covered r.Fuzzing.Fuzz_result.coverage;
        ss_crashes = Fuzzing.Fuzz_result.unique_crashes r;
      }
  in
  let leases = Array.init n (fun i -> Engine.Shard.encode i) in
  let t0 = Unix.gettimeofday () in
  let results, _stats =
    Engine.Shard.run_pool ~shards:n ~backend:Engine.Shard.Fork ~f leases
  in
  let wall = Unix.gettimeofday () -. t0 in
  let per =
    Array.to_list results
    |> List.map (fun v ->
           match Engine.Shard.verdict_to_result v with
           | Ok body -> (
             match Engine.Shard.decode body with
             | Ok (ss : shard_stats) -> ss
             | Error msg -> failwith ("bad shard result: " ^ msg))
           | Error msg -> failwith ("shard failed: " ^ msg))
    |> List.sort (fun a b -> compare a.ss_shard b.ss_shard)
  in
  (wall, per)

let sharded_fields ~wall (per : shard_stats list) =
  let sum f = List.fold_left (fun acc ss -> acc + f ss) 0 per in
  let mutants = sum (fun ss -> ss.ss_mutants) in
  let compiles = sum (fun ss -> ss.ss_compiles) in
  let rate n = float_of_int n /. wall in
  let per_shard =
    "["
    ^ String.concat ", "
        (List.map
           (fun ss ->
             Fmt.str
               "{\"shard\": %d, \"elapsed_s\": %.3f, \"mutants\": %d, \
                \"compiles\": %d, \"mutants_per_sec\": %.1f, \
                \"covered_branches\": %d, \"unique_crashes\": %d}"
               ss.ss_shard ss.ss_elapsed_s ss.ss_mutants ss.ss_compiles
               (if ss.ss_elapsed_s <= 0. then 0.
                else float_of_int ss.ss_mutants /. ss.ss_elapsed_s)
               ss.ss_covered ss.ss_crashes)
           per)
    ^ "]"
  in
  [
    ("label", Fmt.str "%S" label);
    ("mode", if smoke then "\"smoke\"" else "\"full\"");
    ("shards", string_of_int (List.length per));
    (* scaling curves only mean something relative to the cores that ran
       them; record the box so a 1-core container's flat curve is not
       mistaken for a sharding regression *)
    ("cores", string_of_int (Domain.recommended_domain_count ()));
    ("iterations", string_of_int iterations);
    ("elapsed_s", Fmt.str "%.3f" wall);
    ("mutants", string_of_int mutants);
    ("compiles", string_of_int compiles);
    ("mutants_per_sec", Fmt.str "%.1f" (rate mutants));
    ("compiles_per_sec", Fmt.str "%.1f" (rate compiles));
    ("covered_branches",
     string_of_int (List.fold_left (fun m ss -> max m ss.ss_covered) 0 per));
    ("unique_crashes", string_of_int (sum (fun ss -> ss.ss_crashes)));
    ("per_shard", per_shard);
  ]

(* ------------------------------------------------------------------ *)
(* JSON output (hand-rolled: no JSON dependency in the image)          *)
(* ------------------------------------------------------------------ *)

(* Every field of one run, as (name, rendered value) pairs: the source
   for both the flat top-level mirror and the single-line history
   entry. *)
let fields (rs : run_stats) ~hit_words ~armed =
  let per_compile =
    if rs.rs_compiles = 0 then 0.
    else rs.rs_minor_words /. float_of_int rs.rs_compiles
  in
  let rate n = float_of_int n /. rs.rs_elapsed_s in
  (* the same bench with a zero-rate fault harness armed at every site:
     mutants/s through the drawless fast path, pinning chaos-layer
     overhead ≈ 0 (the pct is wall-clock noise around zero) *)
  let armed_rate =
    float_of_int armed.rs_mutants /. armed.rs_elapsed_s
  in
  let overhead_pct =
    let base = rate rs.rs_mutants in
    if base <= 0. then 0. else 100. *. (base -. armed_rate) /. base
  in
  [
    ("label", Fmt.str "%S" label);
    ("mode", if smoke then "\"smoke\"" else "\"full\"");
    (* throughput only compares across runs on the same box width; the
       sharded entries already record this, mirror it here *)
    ("cores", string_of_int (Domain.recommended_domain_count ()));
    ("iterations", string_of_int iterations);
    ("elapsed_s", Fmt.str "%.3f" rs.rs_elapsed_s);
    ("mutants", string_of_int rs.rs_mutants);
    ("compiles", string_of_int rs.rs_compiles);
    ("compiles_cached", string_of_int rs.rs_cached);
    ("mutants_per_sec", Fmt.str "%.1f" (rate rs.rs_mutants));
    ("mutants_per_sec_faults_armed", Fmt.str "%.1f" armed_rate);
    ("faults_armed_overhead_pct", Fmt.str "%.1f" overhead_pct);
    ("compiles_per_sec", Fmt.str "%.1f" (rate rs.rs_compiles));
    ("minor_words_per_compile", Fmt.str "%.1f" per_compile);
    ("coverage_hit_minor_words", Fmt.str "%.6f" hit_words);
    ("probe_minor_words_per_compile", Fmt.str "%.1f" rs.rs_probe_minor_mean);
    ("probe_minor_words_p50", Fmt.str "%.1f" rs.rs_probe_minor_p50);
    ("probe_minor_words_p95", Fmt.str "%.1f" rs.rs_probe_minor_p95);
    ("probe_promoted_words", Fmt.str "%.1f" rs.rs_promoted_words);
    ("probe_major_collections", Fmt.str "%.0f" rs.rs_major_collections);
    ("covered_branches", string_of_int rs.rs_covered);
    ("unique_crashes", string_of_int rs.rs_crashes);
  ]

(* ------------------------------------------------------------------ *)
(* History: one single-line object per labeled run                     *)
(* ------------------------------------------------------------------ *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

(* A history entry is serialized on one line starting with {"label":,
   so prior entries are recovered by a line scan — no JSON parser in
   the image.  A pre-history flat file (one multi-line object, no
   history array) is collapsed into the first entry. *)
let entry_label line =
  let prefix = "{\"label\": \"" in
  if String.length line > String.length prefix then begin
    let start = String.length prefix in
    match String.index_from_opt line start '"' with
    | Some stop -> String.sub line start (stop - start)
    | None -> ""
  end
  else ""

let read_history path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let content = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let lines = List.map String.trim (String.split_on_char '\n' content) in
    let entries =
      List.filter_map
        (fun l ->
          if String.starts_with ~prefix:"{\"label\":" l then
            Some
              (if String.ends_with ~suffix:"," l then
                 String.sub l 0 (String.length l - 1)
               else l)
          else None)
        lines
    in
    if entries <> [] then entries
    else if contains_sub content "\"bench\"" && not (contains_sub content "\"history\"")
    then begin
      (* legacy flat format: its fields become the first entry *)
      let fields =
        List.filter (fun l -> l <> "{" && l <> "}" && l <> "") lines
      in
      [ "{\"label\": \"pre-history\", " ^ String.concat " " fields ^ "}" ]
    end
    else []
  end

let emit (fs : (string * string) list) =
  let entry =
    "{" ^ String.concat ", " (List.map (fun (n, v) -> Fmt.str "%S: %s" n v) fs)
    ^ "}"
  in
  (* same label = same experiment re-run: replace in place, keeping the
     history one entry per label; new labels append chronologically *)
  let history =
    List.filter (fun e -> entry_label e <> label) (read_history out_path)
    @ [ entry ]
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Fmt.str "  %S: %s,\n" "bench" "\"fuzz_throughput\"");
  (* the latest run's fields, mirrored flat for dashboards and check.sh *)
  List.iter (fun (n, v) -> Buffer.add_string buf (Fmt.str "  %S: %s,\n" n v)) fs;
  Buffer.add_string buf "  \"history\": [\n";
  Buffer.add_string buf
    (String.concat ",\n" (List.map (fun e -> "    " ^ e) history));
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out out_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_string (Buffer.contents buf)

let () =
  if shards > 0 then begin
    Fmt.pr "fuzz-throughput bench: %d shards x %d iterations (%s mode)@."
      shards iterations
      (if smoke then "smoke" else "full");
    let wall, per = sharded_throughput shards in
    emit (sharded_fields ~wall per)
  end
  else begin
    Fmt.pr "fuzz-throughput bench: %d iterations (%s mode)@." iterations
      (if smoke then "smoke" else "full");
    let hit_words = coverage_hit_minor_words () in
    let rs = mucfuzz_throughput () in
    let armed =
      mucfuzz_throughput
        ~faults:(Engine.Faults.create Engine.Faults.no_faults)
        ()
    in
    emit (fields rs ~hit_words ~armed)
  end;
  Fmt.pr "wrote %s@." out_path
